"""FLOPs and parameter counting, plus structural comparison helpers.

NetBooster's central claim is that the accuracy boost comes *for free* at
inference time: after contraction the network has exactly the original
structure.  These utilities measure multiply-accumulate counts and parameter
counts by tracing a forward pass, so tests and benchmarks can assert that a
contracted model matches the vanilla one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..nn.functional import conv_output_size

__all__ = ["ComplexityReport", "count_complexity", "count_parameters", "same_structure"]


@dataclass
class ComplexityReport:
    """Aggregate multiply-accumulate and parameter counts for one model."""

    flops: int
    params: int
    per_layer: dict[str, tuple[int, int]]

    @property
    def mflops(self) -> float:
        return self.flops / 1e6

    def __str__(self) -> str:
        return f"ComplexityReport(flops={self.flops:,}, params={self.params:,})"


def count_parameters(model: nn.Module, trainable_only: bool = False) -> int:
    """Total number of scalar parameters."""
    total = 0
    for parameter in model.parameters():
        if trainable_only and not parameter.requires_grad:
            continue
        total += parameter.size
    return total


def count_complexity(model: nn.Module, input_shape: tuple[int, int, int]) -> ComplexityReport:
    """Count multiply-accumulates (FLOPs) for a single input of ``input_shape``.

    Conv and linear layers are counted analytically while spatial dimensions
    are tracked by tracing a forward pass with shape hooks.  BatchNorm and
    activations contribute negligible FLOPs and are ignored (consistent with
    the convention used by the paper's FLOPs column).
    """
    per_layer: dict[str, tuple[int, int]] = {}
    shapes: dict[int, tuple[int, ...]] = {}

    # Trace input shapes by monkey-patching forward on leaf layers.
    records: list[tuple[str, nn.Module, tuple[int, ...]]] = []
    originals: list[tuple[nn.Module, object]] = []
    try:
        for name, module in model.named_modules():
            if isinstance(module, (nn.Conv2d, nn.Linear)):
                def make_wrapper(mod, mod_name, original_forward):
                    def wrapped(x):
                        records.append((mod_name, mod, x.shape))
                        return original_forward(x)
                    return wrapped

                originals.append((module, module.forward))
                module.forward = make_wrapper(module, name, module.forward)
        probe = nn.Tensor(np.zeros((1,) + tuple(input_shape), dtype=np.float32))
        was_training = model.training
        model.eval()
        with nn.no_grad():
            model(probe)
        model.train(was_training)
    finally:
        for module, forward in originals:
            module.forward = forward

    total_flops = 0
    total_params = count_parameters(model)
    for name, module, in_shape in records:
        if isinstance(module, nn.Conv2d):
            h, w = in_shape[2], in_shape[3]
            out_h = conv_output_size(h, module.kernel_size, module.stride, module.padding)
            out_w = conv_output_size(w, module.kernel_size, module.stride, module.padding)
            kernel_flops = (
                module.kernel_size ** 2 * (module.in_channels // module.groups) * module.out_channels
            )
            flops = kernel_flops * out_h * out_w
            if module.bias is not None:
                flops += module.out_channels * out_h * out_w
            params = module.weight.size + (module.bias.size if module.bias is not None else 0)
        else:  # Linear
            flops = module.in_features * module.out_features
            if module.bias is not None:
                flops += module.out_features
            params = module.weight.size + (module.bias.size if module.bias is not None else 0)
        per_layer[name] = (int(flops), int(params))
        total_flops += flops

    return ComplexityReport(flops=int(total_flops), params=int(total_params), per_layer=per_layer)


def same_structure(
    model_a: nn.Module,
    model_b: nn.Module,
    input_shape: tuple[int, int, int],
    flops_tolerance: float = 0.0,
    params_tolerance: float = 0.02,
) -> bool:
    """Check that two models have matching inference complexity.

    ``params_tolerance`` allows a small relative slack: a contracted conv may
    carry an explicit bias where the original relied on the following
    BatchNorm shift, which changes the parameter count by a few tenths of a
    percent without changing the architecture.
    """
    report_a = count_complexity(model_a, input_shape)
    report_b = count_complexity(model_b, input_shape)
    flops_ok = abs(report_a.flops - report_b.flops) <= flops_tolerance * max(report_a.flops, 1)
    params_ok = abs(report_a.params - report_b.params) <= params_tolerance * max(report_a.params, 1)
    return flops_ok and params_ok
