"""MCU deployment analysis: memory footprint, latency estimate, device fit.

The paper's motivation is deploying TNNs on IoT-class hardware (MCUNet's
STM32-style targets).  This module provides the analytic deployment checks a
practitioner runs before flashing a model:

* weight (flash) footprint at a chosen word length;
* peak activation (SRAM) footprint, taken as the largest simultaneous
  input+output working set across layers — the standard MCUNet approximation;
* a simple roofline latency estimate from the MAC count and the device's
  effective MACs/second;
* :func:`fits_device` combining all three against a device profile.

Because NetBooster restores the original TNN structure after contraction,
the deployment report of a NetBooster-trained model must be identical to that
of the vanilla model — a property asserted in the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from .complexity import count_complexity, count_parameters

__all__ = [
    "DeviceProfile",
    "STM32F411",
    "STM32F746",
    "STM32H743",
    "DEVICE_PROFILES",
    "activation_footprints",
    "peak_activation_memory",
    "weight_memory",
    "estimate_latency_ms",
    "DeploymentReport",
    "deployment_report",
    "fits_device",
]


@dataclass(frozen=True)
class DeviceProfile:
    """A microcontroller target for deployment feasibility checks.

    ``effective_macs_per_second`` folds clock frequency and per-cycle MAC
    throughput (including the memory stalls typical of CMSIS-NN kernels) into
    a single number, which is all a roofline estimate needs.
    """

    name: str
    flash_kb: int
    sram_kb: int
    effective_macs_per_second: float

    def __post_init__(self):
        if self.flash_kb <= 0 or self.sram_kb <= 0 or self.effective_macs_per_second <= 0:
            raise ValueError("device resources must be positive")


# Representative profiles from the MCUNet / TinyML literature.
STM32F411 = DeviceProfile("STM32F411", flash_kb=512, sram_kb=128, effective_macs_per_second=25e6)
STM32F746 = DeviceProfile("STM32F746", flash_kb=1024, sram_kb=320, effective_macs_per_second=80e6)
STM32H743 = DeviceProfile("STM32H743", flash_kb=2048, sram_kb=512, effective_macs_per_second=160e6)

DEVICE_PROFILES = {profile.name: profile for profile in (STM32F411, STM32F746, STM32H743)}


def _trace_leaf_shapes(
    model: nn.Module, input_shape: tuple[int, int, int]
) -> list[tuple[str, tuple[int, ...], tuple[int, ...]]]:
    """Record (name, input shape, output shape) for every leaf layer."""
    records: list[tuple[str, tuple[int, ...], tuple[int, ...]]] = []
    originals: list[tuple[nn.Module, object]] = []
    try:
        for name, module in model.named_modules():
            if module.children():
                continue  # only leaves carry activations worth counting

            def make_wrapper(mod, mod_name, original_forward):
                def wrapped(x, *args, **kwargs):
                    out = original_forward(x, *args, **kwargs)
                    if isinstance(x, nn.Tensor) and isinstance(out, nn.Tensor):
                        records.append((mod_name, x.shape, out.shape))
                    return out

                return wrapped

            originals.append((module, module.forward))
            module.forward = make_wrapper(module, name, module.forward)
        probe = nn.Tensor(np.zeros((1,) + tuple(input_shape), dtype=np.float32))
        was_training = model.training
        model.eval()
        with nn.no_grad():
            model(probe)
        model.train(was_training)
    finally:
        for module, forward in originals:
            module.forward = forward
    return records


def activation_footprints(
    model: nn.Module, input_shape: tuple[int, int, int], bytes_per_element: int = 1
) -> dict[str, int]:
    """Per-layer working-set size (input + output activations) in bytes."""
    footprints: dict[str, int] = {}
    for name, in_shape, out_shape in _trace_leaf_shapes(model, input_shape):
        working_set = int(np.prod(in_shape)) + int(np.prod(out_shape))
        footprints[name] = working_set * bytes_per_element
    return footprints


def peak_activation_memory(
    model: nn.Module, input_shape: tuple[int, int, int], bytes_per_element: int = 1
) -> int:
    """Peak SRAM usage in bytes under layer-by-layer execution."""
    footprints = activation_footprints(model, input_shape, bytes_per_element)
    return max(footprints.values()) if footprints else 0


def weight_memory(model: nn.Module, bytes_per_parameter: int = 1) -> int:
    """Flash footprint of the weights in bytes (int8 by default)."""
    return count_parameters(model) * bytes_per_parameter


def estimate_latency_ms(
    model: nn.Module,
    input_shape: tuple[int, int, int],
    device: DeviceProfile,
) -> float:
    """Roofline latency estimate: MAC count divided by device throughput."""
    report = count_complexity(model, input_shape)
    return report.flops / device.effective_macs_per_second * 1e3


@dataclass
class DeploymentReport:
    """Feasibility summary for one model on one device.

    ``host_latency_ms`` is optionally filled with the measured latency of the
    fused :mod:`repro.runtime` program on the development host — a sanity
    anchor next to the analytic device roofline estimate.

    ``planned_peak_int8_bytes`` is the compiled runtime's arena-planner peak
    working set (liveness-packed buffers at one logical byte per activation):
    the *executable* plan of the int8 engine for calibrated quantized models,
    or the float program's planning-pass accounting otherwise —
    ``planner_backend`` records which.  It sits next to the analytic
    ``peak_sram_bytes`` approximation (``max(layer input + output)``).
    """

    device: DeviceProfile
    flash_bytes: int
    peak_sram_bytes: int
    latency_ms: float
    mflops: float
    host_latency_ms: float | None = None
    host_latency_backend: str | None = None
    planned_peak_int8_bytes: int | None = None
    planner_backend: str | None = None
    cold_start_compile_ms: float | None = None
    cold_start_load_ms: float | None = None
    artifact_bytes: int | None = None
    artifact_mode: str | None = None

    @property
    def fits_flash(self) -> bool:
        return self.flash_bytes <= self.device.flash_kb * 1024

    @property
    def fits_sram(self) -> bool:
        return self.peak_sram_bytes <= self.device.sram_kb * 1024

    @property
    def fits(self) -> bool:
        return self.fits_flash and self.fits_sram

    def summary(self) -> str:
        flash_status = "ok" if self.fits_flash else "OVER"
        sram_status = "ok" if self.fits_sram else "OVER"
        lines = [
            f"device            : {self.device.name}",
            f"flash (weights)   : {self.flash_bytes / 1024:8.1f} kB / {self.device.flash_kb} kB [{flash_status}]",
            f"peak SRAM (act.)  : {self.peak_sram_bytes / 1024:8.1f} kB / {self.device.sram_kb} kB [{sram_status}]",
            f"estimated latency : {self.latency_ms:8.1f} ms",
            f"compute           : {self.mflops:8.1f} MFLOPs",
        ]
        if self.planned_peak_int8_bytes is not None:
            backend = self.planner_backend or "unknown backend"
            lines.insert(
                3,
                f"planned peak SRAM : {self.planned_peak_int8_bytes / 1024:8.1f} kB ({backend} arena plan)",
            )
        if self.host_latency_ms is not None:
            backend = self.host_latency_backend or "unknown backend"
            lines.append(f"host latency      : {self.host_latency_ms:8.2f} ms ({backend})")
        if self.cold_start_compile_ms is not None:
            lines.append(
                f"cold start        : {self.cold_start_compile_ms:8.2f} ms compile vs "
                f"{self.cold_start_load_ms:.2f} ms artifact load "
                f"({(self.artifact_bytes or 0) / 1024:.0f} kB {self.artifact_mode} artifact)"
            )
        return "\n".join(lines)


def _planned_peak_bytes(
    model: nn.Module, input_shape: tuple[int, int, int]
) -> tuple[int | None, str | None]:
    """Arena-planner peak working set of the compiled runtime, in int8 bytes.

    Uses the int8 engine's executable plan when the model is quantized and
    calibrated, the float program's planning-pass accounting otherwise;
    ``(None, None)`` when the model cannot be compiled at all.
    """
    import repro

    shape = (1,) + tuple(input_shape)
    if _is_calibrated_int8(model):
        try:
            plan = repro.compile(model, mode="int8", dw_kernel="einsum").memory_plan(shape)
            return plan.peak_value_int8_bytes, "int8"
        except repro.CompileError:
            pass  # not integer-lowerable after all: fall back to float accounting
    try:
        plan = repro.compile(model, mode="infer").memory_plan(shape)
        return plan.peak_value_int8_bytes, "float"
    except Exception:
        return None, None


def _is_calibrated_int8(model: nn.Module) -> bool:
    """True when the model lowers to the int8 engine (quantized + calibrated)."""
    from ..compress.quantization import _QuantizedWrapper

    wrappers = [m for _, m in model.named_modules() if isinstance(m, _QuantizedWrapper)]
    return bool(wrappers) and all(
        not m.observing and m.input_qparams() is not None for m in wrappers
    )


def _cold_start_times(
    model: nn.Module, input_shape: tuple[int, int, int], repeats: int = 3
) -> tuple[float, float, int, str] | tuple[None, None, None, None]:
    """Best-of-``repeats`` compile-from-model vs load-from-artifact times (ms).

    The deployment question this answers: once the artifact file exists, how
    much replica boot time does loading it save over recompiling the prepared
    model?  (``repro.serve``'s bench additionally charges the compile path
    for model init, quantization and calibration — the full boot story.)
    """
    import os
    import tempfile
    import time

    import repro
    from ..runtime import load_artifact

    mode = "int8" if _is_calibrated_int8(model) else "infer"
    fd, path = tempfile.mkstemp(suffix=".rpa")
    os.close(fd)
    try:
        compile_times = []
        net = None
        for _ in range(repeats):
            start = time.perf_counter()
            net = repro.compile(model, mode=mode)
            compile_times.append((time.perf_counter() - start) * 1e3)
        net.save(path, input_shape=input_shape)
        size = os.path.getsize(path)
        load_times = []
        for _ in range(repeats):
            start = time.perf_counter()
            load_artifact(path)
            load_times.append((time.perf_counter() - start) * 1e3)
        return min(compile_times), min(load_times), size, mode
    except Exception:
        return None, None, None, None
    finally:
        os.unlink(path)


def deployment_report(
    model: nn.Module,
    input_shape: tuple[int, int, int],
    device: DeviceProfile = STM32F746,
    weight_bytes: int = 1,
    activation_bytes: int = 1,
    measure_host_latency: bool = False,
    latency_repeats: int = 5,
    plan_memory: bool = True,
    measure_cold_start: bool = False,
) -> DeploymentReport:
    """Build a :class:`DeploymentReport` for ``model`` on ``device``.

    Defaults assume int8 deployment (one byte per weight and per activation).
    ``measure_host_latency=True`` additionally times the model through the
    fused :mod:`repro.runtime` inference engine on this machine;
    ``latency_repeats`` controls how many timed runs back that number (raise
    it when the p95/p99 tail matters more than wall-clock budget).

    ``plan_memory=True`` (the default) also compiles the model through
    :func:`repro.compile` and reports the arena planner's liveness-packed
    peak working set next to the analytic ``max(input + output)``
    approximation — the int8 engine's executable plan for calibrated
    quantized models, the float program's planning pass otherwise.

    ``measure_cold_start=True`` times compiling the prepared model against
    loading it back from a compiled artifact (:mod:`repro.runtime.artifact`)
    and reports both next to the artifact's file size — the recompile-vs-load
    side of replica boot time.
    """
    if latency_repeats < 1:
        raise ValueError("latency_repeats must be at least 1")
    complexity = count_complexity(model, input_shape)
    host_latency_ms = None
    host_latency_backend = None
    if measure_host_latency:
        from .profiler import measure_latency

        stats = measure_latency(model, input_shape, repeats=latency_repeats, compiled=True)
        host_latency_ms = stats["median_ms"]
        host_latency_backend = "compiled runtime" if stats.get("compiled") else "eager forward"
    planned_peak, planner_backend = (
        _planned_peak_bytes(model, input_shape) if plan_memory else (None, None)
    )
    cold_compile, cold_load, artifact_bytes, artifact_mode = (
        _cold_start_times(model, input_shape) if measure_cold_start else (None, None, None, None)
    )
    return DeploymentReport(
        device=device,
        flash_bytes=weight_memory(model, weight_bytes),
        peak_sram_bytes=peak_activation_memory(model, input_shape, activation_bytes),
        latency_ms=complexity.flops / device.effective_macs_per_second * 1e3,
        mflops=complexity.mflops,
        host_latency_ms=host_latency_ms,
        host_latency_backend=host_latency_backend,
        planned_peak_int8_bytes=planned_peak,
        planner_backend=planner_backend,
        cold_start_compile_ms=cold_compile,
        cold_start_load_ms=cold_load,
        artifact_bytes=artifact_bytes,
        artifact_mode=artifact_mode,
    )


def fits_device(
    model: nn.Module,
    input_shape: tuple[int, int, int],
    device: DeviceProfile = STM32F746,
) -> bool:
    """True when the model's weights and activations fit the device."""
    return deployment_report(model, input_shape, device, plan_memory=False).fits
