"""Robustness evaluation under common corruptions.

Measures classification accuracy when the evaluation images are perturbed by
the ImageNet-C-style corruptions from :mod:`repro.data.corruptions`.  The
headline number is the *mean corruption accuracy* (average over corruption
types and severities), reported alongside the clean accuracy so the robustness
gap is explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..data.corruptions import available_corruptions, corrupt
from ..data.datasets import ClassificationDataset
from ..train.trainer import evaluate

__all__ = ["RobustnessReport", "evaluate_robustness"]


@dataclass
class RobustnessReport:
    """Clean vs corrupted accuracy for one model."""

    clean_accuracy: float
    per_corruption: dict[str, dict[int, float]] = field(default_factory=dict)

    @property
    def mean_corruption_accuracy(self) -> float:
        values = [
            accuracy
            for severities in self.per_corruption.values()
            for accuracy in severities.values()
        ]
        return float(np.mean(values)) if values else float("nan")

    @property
    def robustness_gap(self) -> float:
        """Clean accuracy minus mean corruption accuracy (lower is better)."""
        return self.clean_accuracy - self.mean_corruption_accuracy

    def summary(self) -> str:
        lines = [
            f"clean accuracy           : {self.clean_accuracy:6.2f}%",
            f"mean corruption accuracy : {self.mean_corruption_accuracy:6.2f}%",
            f"robustness gap           : {self.robustness_gap:6.2f}%",
        ]
        for name, severities in sorted(self.per_corruption.items()):
            row = ", ".join(f"s{severity}={accuracy:5.1f}%" for severity, accuracy in sorted(severities.items()))
            lines.append(f"  {name:<16s} {row}")
        return "\n".join(lines)


def evaluate_robustness(
    model: nn.Module,
    dataset: ClassificationDataset,
    corruptions: list[str] | None = None,
    severities: tuple[int, ...] = (1, 3, 5),
    batch_size: int = 64,
    seed: int = 0,
) -> RobustnessReport:
    """Evaluate ``model`` on clean and corrupted copies of ``dataset``.

    Parameters
    ----------
    corruptions:
        Names from :func:`repro.data.corruptions.available_corruptions`;
        defaults to the full battery.
    severities:
        Severity levels evaluated for every corruption type.
    """
    corruptions = corruptions if corruptions is not None else available_corruptions()
    for severity in severities:
        if not 1 <= severity <= 5:
            raise ValueError("severities must lie in [1, 5]")

    report = RobustnessReport(clean_accuracy=evaluate(model, dataset, batch_size))
    for name in corruptions:
        report.per_corruption[name] = {}
        for severity in severities:
            corrupted_images = corrupt(dataset.images, name, severity=severity, seed=seed)
            corrupted_set = ClassificationDataset(
                corrupted_images, dataset.labels, dataset.num_classes
            )
            report.per_corruption[name][severity] = evaluate(model, corrupted_set, batch_size)
    return report
