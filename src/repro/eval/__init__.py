"""Model evaluation utilities: complexity, deployment, profiling, robustness."""

from .complexity import ComplexityReport, count_complexity, count_parameters, same_structure
from .deployment import (
    DEVICE_PROFILES,
    STM32F411,
    STM32F746,
    STM32H743,
    DeploymentReport,
    DeviceProfile,
    activation_footprints,
    deployment_report,
    estimate_latency_ms,
    fits_device,
    peak_activation_memory,
    weight_memory,
)
from .profiler import (
    LayerProfile,
    format_profile_table,
    latency_percentiles,
    measure_latency,
    profile_layers,
)
from .robustness import RobustnessReport, evaluate_robustness

__all__ = [
    "ComplexityReport",
    "count_complexity",
    "count_parameters",
    "same_structure",
    "DeviceProfile",
    "DeploymentReport",
    "DEVICE_PROFILES",
    "STM32F411",
    "STM32F746",
    "STM32H743",
    "activation_footprints",
    "peak_activation_memory",
    "weight_memory",
    "estimate_latency_ms",
    "deployment_report",
    "fits_device",
    "LayerProfile",
    "profile_layers",
    "format_profile_table",
    "measure_latency",
    "latency_percentiles",
    "RobustnessReport",
    "evaluate_robustness",
]
