"""Baselines: vanilla training, NetAug, KD variants, DropBlock regularisation."""

from .kd import (
    KDLoss,
    RocketLaunchingLoss,
    TeacherFreeKDLoss,
    make_teacher,
    train_with_kd,
    train_with_rco_kd,
    train_with_rocket_launching,
    train_with_tf_kd,
)
from .netaug import NetAugBlock, NetAugLoss, NetAugModel, train_with_netaug
from .regularization import DropBlock2d, insert_dropblock
from .vanilla import train_vanilla

__all__ = [
    "train_vanilla",
    "NetAugBlock",
    "NetAugModel",
    "NetAugLoss",
    "train_with_netaug",
    "KDLoss",
    "TeacherFreeKDLoss",
    "RocketLaunchingLoss",
    "make_teacher",
    "train_with_kd",
    "train_with_tf_kd",
    "train_with_rco_kd",
    "train_with_rocket_launching",
    "DropBlock2d",
    "insert_dropblock",
]
