"""Knowledge-distillation baselines used in Table I and Table II.

Four KD variants appear in the paper's comparisons:

* **KD** (Hinton et al.) — soft-target distillation from a pretrained teacher;
* **tf-KD** (Yuan et al., CVPR 2020) — teacher-free distillation from a
  manually designed "virtual teacher" distribution (label-smoothing style);
* **RCO-KD** (Jin et al., ICCV 2019) — route-constrained optimisation, where
  the student distills from a *sequence of intermediate teacher checkpoints*
  rather than only the converged teacher;
* **RocketLaunching** (Zhou et al., AAAI 2018) — the light net and a booster
  net are trained *jointly*, the light net additionally regressing the
  booster's logits.

All variants plug into :class:`repro.train.trainer.Trainer` through the
loss-computer interface, and the helper functions return trained models plus
histories so benchmarks can report them alongside NetBooster.
"""

from __future__ import annotations

import copy

import numpy as np

from .. import nn
from ..data.datasets import ClassificationDataset
from ..nn import functional as F
from ..train.trainer import Trainer, TrainingHistory
from ..utils.config import ExperimentConfig

__all__ = [
    "KDLoss",
    "TeacherFreeKDLoss",
    "RocketLaunchingLoss",
    "train_with_kd",
    "train_with_tf_kd",
    "train_with_rco_kd",
    "train_with_rocket_launching",
    "make_teacher",
]


def make_teacher(student_like: nn.Module, num_classes: int, width_factor: float = 2.0) -> nn.Module:
    """Build a larger teacher network of the same family as the student.

    The paper uses Assemble-ResNet50 as the teacher; here the teacher is a
    wider MobileNetV2, which plays the same role (a higher-capacity network
    that fits the corpus comfortably).
    """
    from ..models.mobilenetv2 import MobileNetV2

    width = getattr(student_like, "width_mult", 0.5) * width_factor
    return MobileNetV2(num_classes=num_classes, width_mult=width)


class KDLoss:
    """Classic soft-target knowledge distillation."""

    def __init__(self, teacher: nn.Module, temperature: float = 4.0, alpha: float = 0.7):
        self.teacher = teacher
        self.temperature = temperature
        self.alpha = alpha
        self.teacher.eval()

    def __call__(self, model, images, labels):
        with nn.no_grad():
            teacher_logits = self.teacher(images)
        student_logits = model(images)
        hard = F.cross_entropy(student_logits, labels)
        soft = F.kl_divergence(teacher_logits, student_logits, temperature=self.temperature)
        return (1.0 - self.alpha) * hard + self.alpha * soft, student_logits


class TeacherFreeKDLoss:
    """tf-KD: distillation from a manually designed virtual teacher.

    The virtual teacher assigns probability ``correct_prob`` to the ground
    truth class and spreads the remainder uniformly, then is sharpened or
    smoothed by the temperature — no teacher network required.
    """

    def __init__(self, num_classes: int, correct_prob: float = 0.9, temperature: float = 10.0, alpha: float = 0.6):
        self.num_classes = num_classes
        self.correct_prob = correct_prob
        self.temperature = temperature
        self.alpha = alpha

    def _virtual_teacher(self, labels: np.ndarray) -> np.ndarray:
        uniform = (1.0 - self.correct_prob) / max(self.num_classes - 1, 1)
        probs = np.full((len(labels), self.num_classes), uniform, dtype=np.float32)
        probs[np.arange(len(labels)), labels] = self.correct_prob
        return probs

    def __call__(self, model, images, labels):
        logits = model(images)
        hard = F.cross_entropy(logits, labels)
        teacher_probs = self._virtual_teacher(np.asarray(labels))
        log_probs = F.log_softmax(logits * (1.0 / self.temperature), axis=-1)
        soft = -(nn.Tensor(teacher_probs) * log_probs).sum(axis=-1).mean() * (self.temperature ** 2 / 100.0)
        return (1.0 - self.alpha) * hard + self.alpha * soft, logits


class RocketLaunchingLoss:
    """RocketLaunching: joint training of the light net and a booster net.

    Both networks are optimised in the same backward pass; the light net's
    loss adds a hint term pulling its logits towards the booster's.
    """

    def __init__(self, booster: nn.Module, hint_weight: float = 0.5):
        self.booster = booster
        self.hint_weight = hint_weight

    def __call__(self, model, images, labels):
        student_logits = model(images)
        booster_logits = self.booster(images)
        loss = (
            F.cross_entropy(student_logits, labels)
            + F.cross_entropy(booster_logits, labels)
            + self.hint_weight * F.mse_loss(student_logits, booster_logits.detach())
        )
        return loss, student_logits


def _pretrain_teacher(
    teacher: nn.Module,
    train_set: ClassificationDataset,
    config: ExperimentConfig,
    checkpoint_epochs: list[int] | None = None,
) -> list[dict]:
    """Train the teacher, optionally snapshotting intermediate checkpoints."""
    checkpoints: list[dict] = []
    trainer = Trainer(teacher, config)
    for epoch in range(config.epochs):
        trainer.fit(train_set, None, epochs=1)
        if checkpoint_epochs and (epoch + 1) in checkpoint_epochs:
            checkpoints.append(teacher.state_dict())
    checkpoints.append(teacher.state_dict())
    return checkpoints


def train_with_kd(
    student: nn.Module,
    train_set: ClassificationDataset,
    val_set: ClassificationDataset | None,
    config: ExperimentConfig,
    teacher: nn.Module | None = None,
    teacher_config: ExperimentConfig | None = None,
    temperature: float = 4.0,
    alpha: float = 0.7,
) -> TrainingHistory:
    """Classic KD: pretrain (or reuse) a teacher, then distill into the student."""
    if teacher is None:
        teacher = make_teacher(student, train_set.num_classes)
        _pretrain_teacher(teacher, train_set, teacher_config or config)
    teacher.eval()
    trainer = Trainer(student, config, loss_computer=KDLoss(teacher, temperature, alpha))
    return trainer.fit(train_set, val_set)


def train_with_tf_kd(
    student: nn.Module,
    train_set: ClassificationDataset,
    val_set: ClassificationDataset | None,
    config: ExperimentConfig,
    correct_prob: float = 0.9,
    temperature: float = 10.0,
) -> TrainingHistory:
    """Teacher-free KD (virtual-teacher label smoothing)."""
    loss = TeacherFreeKDLoss(train_set.num_classes, correct_prob=correct_prob, temperature=temperature)
    trainer = Trainer(student, config, loss_computer=loss)
    return trainer.fit(train_set, val_set)


def train_with_rco_kd(
    student: nn.Module,
    train_set: ClassificationDataset,
    val_set: ClassificationDataset | None,
    config: ExperimentConfig,
    num_anchors: int = 3,
    teacher: nn.Module | None = None,
    teacher_config: ExperimentConfig | None = None,
) -> TrainingHistory:
    """RCO-KD: distill from a route of intermediate teacher checkpoints.

    The teacher's training trajectory is snapshotted at ``num_anchors`` evenly
    spaced epochs; the student then distills from each anchor in turn, easing
    the capacity gap exactly as route-constrained optimisation prescribes.
    """
    teacher_config = teacher_config or config
    if teacher is None:
        teacher = make_teacher(student, train_set.num_classes)
    anchor_epochs = [
        max(int(round(teacher_config.epochs * (i + 1) / num_anchors)), 1) for i in range(num_anchors - 1)
    ]
    checkpoints = _pretrain_teacher(teacher, train_set, teacher_config, checkpoint_epochs=anchor_epochs)

    history = TrainingHistory()
    epochs_per_stage = max(config.epochs // len(checkpoints), 1)
    stage_config = config.replace(epochs=epochs_per_stage)
    for checkpoint in checkpoints:
        stage_teacher = copy.deepcopy(teacher)
        stage_teacher.load_state_dict(checkpoint, strict=False)
        stage_teacher.eval()
        trainer = Trainer(student, stage_config, loss_computer=KDLoss(stage_teacher))
        history.extend(trainer.fit(train_set, val_set, epochs=epochs_per_stage))
    return history


def train_with_rocket_launching(
    student: nn.Module,
    train_set: ClassificationDataset,
    val_set: ClassificationDataset | None,
    config: ExperimentConfig,
    booster: nn.Module | None = None,
    hint_weight: float = 0.5,
) -> TrainingHistory:
    """RocketLaunching: student and booster trained jointly with a hint loss.

    The booster's parameters are optimised together with the student's by
    registering them with the same optimiser.
    """
    booster = booster or make_teacher(student, train_set.num_classes)
    loss = RocketLaunchingLoss(booster, hint_weight=hint_weight)
    trainer = Trainer(student, config, loss_computer=loss)
    # Jointly optimise the booster: extend the optimiser's parameter list.
    trainer.optimizer.params.extend(p for p in booster.parameters() if p.requires_grad)
    trainer.optimizer._velocity.extend([None] * len(booster.parameters()))
    return trainer.fit(train_set, val_set)
