"""Vanilla training baseline (the "Vanilla" rows of Tables I–III)."""

from __future__ import annotations

from .. import nn
from ..data.datasets import ClassificationDataset
from ..data.transforms import Transform
from ..train.trainer import Trainer, TrainingHistory
from ..utils.config import ExperimentConfig

__all__ = ["train_vanilla"]


def train_vanilla(
    model: nn.Module,
    train_set: ClassificationDataset,
    val_set: ClassificationDataset | None,
    config: ExperimentConfig,
    train_transform: Transform | None = None,
) -> TrainingHistory:
    """Train ``model`` with plain cross-entropy SGD and return the history."""
    trainer = Trainer(model, config, train_transform=train_transform)
    return trainer.fit(train_set, val_set)
