"""NetAug baseline (Cai et al., 2021) — width-only network augmentation.

NetAug is the closest prior work to NetBooster: during training the tiny
network is embedded into a *wider* supernet whose extra channels provide
auxiliary supervision, and at the end the augmented widths are simply dropped.
The differences NetBooster calls out are (1) NetAug only augments the width
dimension and (2) the augmented parts are removed abruptly rather than being
gradually linearised and merged, so some learned information is lost.

The implementation here widens the hidden dimension of every inverted
residual block by ``augment_ratio``; the base network's weights are the
leading slices of the widened kernels (true weight sharing through autograd
slicing).  Each training step supervises both the base forward pass and the
augmented forward pass; after training the base slices are exported back into
a plain model with the original architecture.
"""

from __future__ import annotations

import copy

import numpy as np

from .. import nn
from ..data.datasets import ClassificationDataset
from ..models.blocks import InvertedResidual
from ..nn import functional as F
from ..train.trainer import Trainer, TrainingHistory
from ..utils.config import ExperimentConfig

__all__ = ["NetAugBlock", "NetAugModel", "NetAugLoss", "train_with_netaug"]


class NetAugBlock(nn.Module):
    """Width-augmented drop-in replacement for an :class:`InvertedResidual`.

    The widened expand/depthwise/project kernels are the trainable parameters;
    the base network uses their leading ``base_hidden`` channels.  BatchNorm
    statistics are kept separately for the base and augmented paths (weight
    sharing across different widths would otherwise corrupt them).
    """

    def __init__(self, base_block: InvertedResidual, augment_ratio: float = 2.0):
        super().__init__()
        if isinstance(base_block.expand, nn.Identity):
            raise ValueError("NetAugBlock requires a block with an expansion convolution")
        base_expand_conv = base_block.expand.conv
        base_dw_conv = base_block.depthwise.conv
        base_project_conv = base_block.project.conv

        self.in_channels = base_block.in_channels
        self.out_channels = base_block.out_channels
        self.stride = base_block.stride
        self.use_residual = base_block.use_residual
        self.base_hidden = base_expand_conv.out_channels
        self.full_hidden = int(round(self.base_hidden * augment_ratio))
        self.kernel_size = base_dw_conv.kernel_size
        self.padding = base_dw_conv.padding
        self.use_augmented = False

        # Widened shared kernels, base slices initialised from the base block.
        expand_weight = nn.init.kaiming_normal((self.full_hidden, self.in_channels, 1, 1))
        expand_weight[: self.base_hidden] = base_expand_conv.weight.data
        self.expand_weight = nn.Parameter(expand_weight)

        dw_weight = nn.init.kaiming_normal((self.full_hidden, 1, self.kernel_size, self.kernel_size))
        dw_weight[: self.base_hidden] = base_dw_conv.weight.data
        self.dw_weight = nn.Parameter(dw_weight)

        project_weight = nn.init.kaiming_normal((self.out_channels, self.full_hidden, 1, 1))
        project_weight[:, : self.base_hidden] = base_project_conv.weight.data
        self.project_weight = nn.Parameter(project_weight)

        # Separate normalisation for the two paths.
        self.base_expand_bn = nn.BatchNorm2d(self.base_hidden)
        self.base_dw_bn = nn.BatchNorm2d(self.base_hidden)
        self.base_project_bn = nn.BatchNorm2d(self.out_channels)
        self.aug_expand_bn = nn.BatchNorm2d(self.full_hidden)
        self.aug_dw_bn = nn.BatchNorm2d(self.full_hidden)
        self.aug_project_bn = nn.BatchNorm2d(self.out_channels)
        self.base_expand_bn.load_state_dict(base_block.expand.bn.state_dict(), strict=False)
        self.base_dw_bn.load_state_dict(base_block.depthwise.bn.state_dict(), strict=False)
        self.base_project_bn.load_state_dict(base_block.project.bn.state_dict(), strict=False)

        self.act = nn.ReLU6()

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        if self.use_augmented:
            hidden = self.full_hidden
            expand_w = self.expand_weight
            dw_w = self.dw_weight
            project_w = self.project_weight
            bn_expand, bn_dw, bn_project = self.aug_expand_bn, self.aug_dw_bn, self.aug_project_bn
        else:
            hidden = self.base_hidden
            expand_w = self.expand_weight[: self.base_hidden]
            dw_w = self.dw_weight[: self.base_hidden]
            project_w = self.project_weight[:, : self.base_hidden]
            bn_expand, bn_dw, bn_project = self.base_expand_bn, self.base_dw_bn, self.base_project_bn

        out = F.conv2d(x, expand_w)
        out = self.act(bn_expand(out))
        out = F.conv2d(out, dw_w, stride=self.stride, padding=self.padding, groups=hidden)
        out = self.act(bn_dw(out))
        out = F.conv2d(out, project_w)
        out = bn_project(out)
        if self.use_residual:
            out = out + x
        return out

    def export_base_block(self) -> InvertedResidual:
        """Materialise a plain inverted residual block from the base slices."""
        block = InvertedResidual(
            self.in_channels,
            self.out_channels,
            stride=self.stride,
            expand_ratio=max(self.base_hidden // self.in_channels, 1),
            kernel_size=self.kernel_size,
        )
        block.expand.conv.weight.data[...] = self.expand_weight.data[: self.base_hidden]
        block.depthwise.conv.weight.data[...] = self.dw_weight.data[: self.base_hidden]
        block.project.conv.weight.data[...] = self.project_weight.data[:, : self.base_hidden]
        block.expand.bn.load_state_dict(self.base_expand_bn.state_dict(), strict=False)
        block.depthwise.bn.load_state_dict(self.base_dw_bn.state_dict(), strict=False)
        block.project.bn.load_state_dict(self.base_project_bn.state_dict(), strict=False)
        return block


class NetAugModel(nn.Module):
    """A model whose inverted residual blocks are replaced by NetAug blocks."""

    def __init__(self, base_model: nn.Module, augment_ratio: float = 2.0):
        super().__init__()
        self.network = copy.deepcopy(base_model)
        self._block_paths: list[str] = []
        for name, module in list(self.network.named_modules()):
            if isinstance(module, InvertedResidual) and not isinstance(module.expand, nn.Identity):
                self.network.set_submodule(name, NetAugBlock(module, augment_ratio))
                self._block_paths.append(name)
        # Kept in a tuple so the template is not registered as a child module
        # (its parameters must not leak into the optimiser or state dict).
        self._template_holder = (copy.deepcopy(base_model),)

    def set_augmented(self, augmented: bool) -> None:
        """Switch every NetAug block between the base and augmented paths."""
        for path in self._block_paths:
            block = self.network.get_submodule(path)
            block.use_augmented = augmented

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return self.network(x)

    def export_base_model(self) -> nn.Module:
        """Return a plain model with the trained base-path weights."""
        exported = copy.deepcopy(self._template_holder[0])
        # Copy all non-augmented weights (stem, head, classifier, plain blocks).
        augmented_state = self.network.state_dict()
        exported_state = exported.state_dict()
        for key, value in augmented_state.items():
            if key in exported_state and exported_state[key].shape == value.shape:
                exported_state[key] = value
        exported.load_state_dict(exported_state, strict=False)
        for path in self._block_paths:
            block = self.network.get_submodule(path)
            exported.set_submodule(path, block.export_base_block())
        return exported


class NetAugLoss:
    """Base cross-entropy plus weighted auxiliary loss from the augmented path."""

    def __init__(self, aug_weight: float = 1.0, label_smoothing: float = 0.0):
        self.aug_weight = aug_weight
        self.label_smoothing = label_smoothing

    def __call__(self, model: NetAugModel, images, labels):
        model.set_augmented(False)
        logits = model(images)
        loss = F.cross_entropy(logits, labels, label_smoothing=self.label_smoothing)
        if self.aug_weight > 0:
            model.set_augmented(True)
            augmented_logits = model(images)
            loss = loss + self.aug_weight * F.cross_entropy(
                augmented_logits, labels, label_smoothing=self.label_smoothing
            )
            model.set_augmented(False)
        return loss, logits


def train_with_netaug(
    model: nn.Module,
    train_set: ClassificationDataset,
    val_set: ClassificationDataset | None,
    config: ExperimentConfig,
    augment_ratio: float = 2.0,
    aug_weight: float = 1.0,
) -> tuple[nn.Module, TrainingHistory]:
    """Train ``model`` with NetAug and return the exported base model + history."""
    supernet = NetAugModel(model, augment_ratio=augment_ratio)
    trainer = Trainer(
        supernet,
        config,
        loss_computer=NetAugLoss(aug_weight=aug_weight, label_smoothing=config.label_smoothing),
    )
    history = trainer.fit(train_set, val_set)
    return supernet.export_base_model(), history
