"""Regularisation baselines for the Fig. 1(a) under-fitting experiment.

The paper's first observation is that techniques designed for large,
over-fitting networks — DropBlock in particular — *reduce* the accuracy of
tiny networks, which instead under-fit.  This module implements DropBlock and
a helper that inserts it into a backbone so the comparison can be reproduced.
"""

from __future__ import annotations

import copy

import numpy as np

from .. import nn

__all__ = ["DropBlock2d", "insert_dropblock"]


class DropBlock2d(nn.Module):
    """DropBlock regularisation (Ghiasi et al., 2018).

    Contiguous ``block_size x block_size`` regions of the feature map are
    zeroed during training and the activations are rescaled to preserve the
    expected value.  At evaluation time the module is the identity.
    """

    def __init__(self, drop_prob: float = 0.1, block_size: int = 3, seed: int = 0):
        super().__init__()
        self.drop_prob = float(drop_prob)
        self.block_size = int(block_size)
        self._rng = np.random.default_rng(seed)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        if not self.training or self.drop_prob <= 0.0:
            return x
        n, c, h, w = x.shape
        block = min(self.block_size, h, w)
        # gamma chosen so the expected fraction of dropped units equals drop_prob.
        gamma = (
            self.drop_prob
            / (block ** 2)
            * (h * w)
            / max((h - block + 1) * (w - block + 1), 1)
        )
        seed_mask = (self._rng.random((n, c, h - block + 1, w - block + 1)) < gamma)
        mask = np.ones((n, c, h, w), dtype=np.float32)
        seeds = np.argwhere(seed_mask)
        for sample, channel, row, col in seeds:
            mask[sample, channel, row : row + block, col : col + block] = 0.0
        keep_fraction = mask.mean()
        if keep_fraction <= 0:
            return x
        scale = 1.0 / keep_fraction
        return x * nn.Tensor(mask * scale)

    def __repr__(self) -> str:
        return f"DropBlock2d(p={self.drop_prob}, block={self.block_size})"


def insert_dropblock(
    model: nn.Module,
    drop_prob: float = 0.1,
    block_size: int = 3,
    every: int = 2,
    seed: int = 0,
) -> nn.Module:
    """Return a copy of ``model`` with DropBlock layers inserted in its backbone.

    A :class:`DropBlock2d` is appended after every ``every``-th layer of the
    model's ``features`` Sequential (skipping the stem), mirroring the usual
    placement in the later stages of the network.
    """
    if not hasattr(model, "features") or not isinstance(model.features, nn.Sequential):
        raise TypeError("insert_dropblock expects a model with a Sequential 'features' backbone")
    regularised = copy.deepcopy(model)
    layers = [regularised.features[i] for i in range(len(regularised.features))]
    rebuilt: list[nn.Module] = []
    for index, layer in enumerate(layers):
        rebuilt.append(layer)
        if index > 0 and index % every == 0:
            rebuilt.append(DropBlock2d(drop_prob, block_size, seed=seed + index))
    regularised.features = nn.Sequential(*rebuilt)
    return regularised
