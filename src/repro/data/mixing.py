"""Batch-level mixing augmentations: MixUp and CutMix.

The paper's Fig. 1(a) argument is that heavy augmentation *hurts* tiny
networks because they under-fit rather than over-fit.  To reproduce that
claim quantitatively the substrate needs the strong augmentations themselves;
MixUp (Zhang et al., 2018) and CutMix (Yun et al., 2019) are the two standard
batch-level ones.  Both return soft-label targets, consumed by
:class:`repro.nn.losses.SoftTargetCrossEntropy`.

:class:`MixingLoss` adapts them to the :class:`repro.train.Trainer` loss
computer interface so any experiment can switch them on with one argument.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F

__all__ = ["mixup", "cutmix", "MixingLoss"]


def _beta(alpha: float, rng: np.random.Generator) -> float:
    if alpha <= 0.0:
        return 1.0
    return float(rng.beta(alpha, alpha))


def mixup(
    images: np.ndarray,
    labels: np.ndarray,
    num_classes: int,
    alpha: float = 0.2,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """MixUp: convex combination of two images and their one-hot labels.

    Returns ``(mixed_images, soft_targets)`` where the soft targets are the
    same convex combination of the two label distributions.
    """
    rng = rng or np.random.default_rng()
    images = np.asarray(images, dtype=np.float32)
    lam = _beta(alpha, rng)
    permutation = rng.permutation(len(images))
    mixed = lam * images + (1.0 - lam) * images[permutation]
    targets = lam * F.one_hot(labels, num_classes) + (1.0 - lam) * F.one_hot(
        labels[permutation], num_classes
    )
    return mixed.astype(np.float32), targets


def cutmix(
    images: np.ndarray,
    labels: np.ndarray,
    num_classes: int,
    alpha: float = 1.0,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """CutMix: paste a rectangular patch from a shuffled batch partner.

    The label weights are proportional to the surviving pixel areas, as in the
    original paper.
    """
    rng = rng or np.random.default_rng()
    images = np.asarray(images, dtype=np.float32).copy()
    n, _, height, width = images.shape
    lam = _beta(alpha, rng)
    permutation = rng.permutation(n)

    cut_ratio = np.sqrt(1.0 - lam)
    cut_h = int(round(height * cut_ratio))
    cut_w = int(round(width * cut_ratio))
    if cut_h == 0 or cut_w == 0:
        return images, F.one_hot(labels, num_classes)

    centre_y = int(rng.integers(0, height))
    centre_x = int(rng.integers(0, width))
    y0, y1 = np.clip([centre_y - cut_h // 2, centre_y + cut_h // 2], 0, height)
    x0, x1 = np.clip([centre_x - cut_w // 2, centre_x + cut_w // 2], 0, width)

    images[:, :, y0:y1, x0:x1] = images[permutation][:, :, y0:y1, x0:x1]
    # Recompute lambda from the actually pasted area (clipping can shrink it).
    pasted_area = (y1 - y0) * (x1 - x0)
    lam = 1.0 - pasted_area / (height * width)
    targets = lam * F.one_hot(labels, num_classes) + (1.0 - lam) * F.one_hot(
        labels[permutation], num_classes
    )
    return images, targets


class MixingLoss:
    """Trainer loss computer that applies MixUp or CutMix per batch.

    Parameters
    ----------
    num_classes:
        Size of the label space (needed for the soft targets).
    method:
        ``"mixup"`` or ``"cutmix"``.
    alpha:
        Beta-distribution concentration; larger values mix more aggressively.
    probability:
        Fraction of batches that are mixed; the rest use plain cross entropy.
    """

    def __init__(
        self,
        num_classes: int,
        method: str = "mixup",
        alpha: float = 0.2,
        probability: float = 1.0,
        seed: int = 0,
    ):
        if method not in ("mixup", "cutmix"):
            raise ValueError("method must be 'mixup' or 'cutmix'")
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must lie in [0, 1]")
        self.num_classes = num_classes
        self.method = method
        self.alpha = alpha
        self.probability = probability
        self._rng = np.random.default_rng(seed)

    def __call__(self, model: nn.Module, images: nn.Tensor, labels: np.ndarray):
        if self._rng.random() >= self.probability:
            logits = model(images)
            return F.cross_entropy(logits, labels), logits
        mixer = mixup if self.method == "mixup" else cutmix
        mixed, targets = mixer(images.data, labels, self.num_classes, self.alpha, self._rng)
        logits = model(nn.Tensor(mixed))
        loss = F.cross_entropy(logits, targets, soft_targets=True)
        return loss, logits
