"""Synthetic data substrate: classification corpora, detection sets, loaders."""

from .corruptions import CORRUPTIONS, available_corruptions, corrupt
from .dataloader import DataLoader
from .datasets import (
    DOWNSTREAM_SPECS,
    ClassificationDataset,
    DownstreamSpec,
    SyntheticImageNet,
    downstream_dataset,
)
from .detection import DetectionDataset, DetectionSample, SyntheticVOC
from .mixing import MixingLoss, cutmix, mixup
from .generator import DecoderSpec, LatentClassSampler, RandomImageDecoder
from .transforms import (
    ColorJitter,
    Compose,
    GaussianNoise,
    Normalize,
    RandAugmentLite,
    RandomCrop,
    RandomErasing,
    RandomHorizontalFlip,
    Transform,
)

__all__ = [
    "DataLoader",
    "ClassificationDataset",
    "SyntheticImageNet",
    "downstream_dataset",
    "DownstreamSpec",
    "DOWNSTREAM_SPECS",
    "DetectionDataset",
    "DetectionSample",
    "SyntheticVOC",
    "DecoderSpec",
    "RandomImageDecoder",
    "LatentClassSampler",
    "Transform",
    "Compose",
    "RandomHorizontalFlip",
    "RandomCrop",
    "RandomErasing",
    "ColorJitter",
    "GaussianNoise",
    "RandAugmentLite",
    "Normalize",
    "CORRUPTIONS",
    "available_corruptions",
    "corrupt",
    "mixup",
    "cutmix",
    "MixingLoss",
]
