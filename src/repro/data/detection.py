"""Synthetic object-detection dataset (stand-in for Pascal VOC).

Images are composed of a textured background onto which one to three decoded
object patches are pasted at random positions; the ground truth is the list of
axis-aligned bounding boxes and class labels.  The dataset exercises the same
code path as the paper's VOC experiment: a classification backbone pretrained
on the large corpus, a detection head finetuned on the detection set, and an
AP50 evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .generator import DecoderSpec, LatentClassSampler, RandomImageDecoder

__all__ = ["DetectionSample", "DetectionDataset", "SyntheticVOC"]


@dataclass
class DetectionSample:
    """One detection image with its ground-truth annotations.

    ``boxes`` are ``(num_objects, 4)`` arrays of ``(x_min, y_min, x_max, y_max)``
    in pixel coordinates; ``labels`` are the matching class indices.
    """

    image: np.ndarray
    boxes: np.ndarray
    labels: np.ndarray


class DetectionDataset:
    """A list of :class:`DetectionSample` with dataset-level metadata."""

    def __init__(self, samples: list[DetectionSample], num_classes: int, resolution: int, name: str = "detection"):
        self.samples = samples
        self.num_classes = num_classes
        self.resolution = resolution
        self.name = name

    def __len__(self) -> int:
        return len(self.samples)

    def __getitem__(self, index: int) -> DetectionSample:
        return self.samples[index]

    def images(self) -> np.ndarray:
        """Stacked ``(N, 3, R, R)`` image array."""
        return np.stack([sample.image for sample in self.samples])


class SyntheticVOC:
    """Procedurally generated detection benchmark.

    Parameters
    ----------
    num_classes:
        Number of object categories.
    num_train / num_val:
        Number of generated images in each split.
    resolution:
        Image resolution (square).
    object_size:
        Side length of pasted object patches, which is also the box size.
    decoder_seed:
        Seed of the shared random decoder (kept equal to the classification
        corpus so backbone features transfer).
    """

    def __init__(
        self,
        num_classes: int = 6,
        num_train: int = 96,
        num_val: int = 32,
        resolution: int = 32,
        object_size: int = 12,
        max_objects: int = 2,
        decoder_seed: int = 1234,
        seed: int = 0,
    ):
        if object_size % 4 != 0:
            raise ValueError("object_size must be a multiple of 4")
        self.num_classes = num_classes
        self.resolution = resolution
        self.object_size = object_size
        self.max_objects = max_objects
        self._decoder = RandomImageDecoder(
            DecoderSpec(latent_dim=32, base_size=object_size // 4, seed=decoder_seed)
        )
        self._sampler = LatentClassSampler(num_classes, 32, intra_class_std=0.7, class_seed=seed + 31)
        self.train = self._generate(num_train, seed=seed, name="synthetic-voc-train")
        self.val = self._generate(num_val, seed=seed + 1, name="synthetic-voc-val")

    def _background(self, rng: np.random.Generator) -> np.ndarray:
        """Smooth random-colour background with mild texture."""
        base = rng.uniform(0.2, 0.8, size=(3, 1, 1)).astype(np.float32)
        texture = rng.normal(0.0, 0.05, size=(3, self.resolution, self.resolution)).astype(np.float32)
        return np.clip(base + texture, 0.0, 1.0)

    def _generate(self, count: int, seed: int, name: str) -> DetectionDataset:
        rng = np.random.default_rng(seed)
        samples: list[DetectionSample] = []
        for _ in range(count):
            image = self._background(rng)
            num_objects = int(rng.integers(1, self.max_objects + 1))
            boxes = []
            labels = []
            for _ in range(num_objects):
                label = int(rng.integers(self.num_classes))
                latent = self._sampler.sample(label, rng)
                patch = self._decoder.decode(latent)
                max_pos = self.resolution - self.object_size
                x0 = int(rng.integers(0, max_pos + 1))
                y0 = int(rng.integers(0, max_pos + 1))
                image[:, y0 : y0 + self.object_size, x0 : x0 + self.object_size] = patch
                boxes.append([x0, y0, x0 + self.object_size, y0 + self.object_size])
                labels.append(label)
            samples.append(
                DetectionSample(
                    image=image.astype(np.float32),
                    boxes=np.asarray(boxes, dtype=np.float32),
                    labels=np.asarray(labels, dtype=np.int64),
                )
            )
        return DetectionDataset(samples, self.num_classes, self.resolution, name=name)
