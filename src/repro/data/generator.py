"""Procedural image generator used as the stand-in for natural-image datasets.

The paper evaluates NetBooster on ImageNet and five downstream classification
datasets.  Neither the images nor a GPU are available here, so this module
provides a *class-conditional procedural generator* with a controllable
difficulty profile:

* every class corresponds to a centre in a latent space;
* a sample is the class centre plus intra-class jitter plus free "nuisance"
  dimensions;
* the latent vector is pushed through a fixed **random non-linear decoder**
  (two rounds of upsampling + random convolutions + ``tanh``) to produce an
  RGB image.

Because the decoder is non-linear, recovering the class label from pixels
requires learning a non-trivial hierarchy of features, so model capacity
matters: tiny networks under-fit exactly as described in the paper, while
wider/deeper "giants" fit the data — which is the phenomenon NetBooster
exploits.  Downstream datasets reuse the *same decoder* with new class
centres, reproducing the pretrain-then-transfer setting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DecoderSpec", "RandomImageDecoder", "LatentClassSampler"]


def _conv2d_same(x: np.ndarray, kernels: np.ndarray) -> np.ndarray:
    """Plain (non-autograd) same-padded convolution used by the decoder.

    Parameters
    ----------
    x:
        Input of shape ``(C_in, H, W)``.
    kernels:
        Weights of shape ``(C_out, C_in, k, k)`` with odd ``k``.
    """
    c_out, c_in, k, _ = kernels.shape
    pad = k // 2
    padded = np.pad(x, ((0, 0), (pad, pad), (pad, pad)))
    h, w = x.shape[1:]
    out = np.zeros((c_out, h, w), dtype=x.dtype)
    for i in range(k):
        for j in range(k):
            patch = padded[:, i : i + h, j : j + w]
            out += np.einsum("oc,chw->ohw", kernels[:, :, i, j], patch)
    return out


def _upsample2x(x: np.ndarray) -> np.ndarray:
    """Nearest-neighbour 2x upsampling of a ``(C, H, W)`` array."""
    return x.repeat(2, axis=1).repeat(2, axis=2)


@dataclass
class DecoderSpec:
    """Configuration of the random decoder.

    Attributes
    ----------
    latent_dim:
        Dimensionality of the class/nuisance latent vector.
    base_size:
        Spatial size of the seed feature map; the output resolution is
        ``base_size * 4`` (two upsampling stages).
    base_channels:
        Channels of the seed feature map.
    mid_channels:
        Channels after the first decoding convolution.
    seed:
        Seed for the fixed random decoder weights.  Datasets that should share
        transferable features must share this seed.
    """

    latent_dim: int = 32
    base_size: int = 6
    base_channels: int = 8
    mid_channels: int = 6
    seed: int = 1234

    @property
    def resolution(self) -> int:
        return self.base_size * 4


class RandomImageDecoder:
    """Fixed random non-linear decoder from latent vectors to RGB images."""

    def __init__(self, spec: DecoderSpec | None = None):
        self.spec = spec or DecoderSpec()
        rng = np.random.default_rng(self.spec.seed)
        s = self.spec
        scale = 1.0 / np.sqrt(s.latent_dim)
        self._w_seed = rng.normal(0.0, scale, size=(s.latent_dim, s.base_channels * s.base_size**2)).astype(np.float32)
        self._k1 = rng.normal(0.0, 0.4, size=(s.mid_channels, s.base_channels, 3, 3)).astype(np.float32)
        self._k2 = rng.normal(0.0, 0.4, size=(3, s.mid_channels, 3, 3)).astype(np.float32)
        self._b1 = rng.normal(0.0, 0.1, size=(s.mid_channels, 1, 1)).astype(np.float32)
        self._b2 = rng.normal(0.0, 0.1, size=(3, 1, 1)).astype(np.float32)

    def decode(self, latent: np.ndarray) -> np.ndarray:
        """Decode one latent vector to an image of shape ``(3, R, R)`` in [0, 1]."""
        s = self.spec
        seed_map = np.tanh(latent @ self._w_seed).reshape(s.base_channels, s.base_size, s.base_size)
        x = _upsample2x(seed_map)
        x = np.tanh(_conv2d_same(x, self._k1) + self._b1)
        x = _upsample2x(x)
        x = np.tanh(_conv2d_same(x, self._k2) + self._b2)
        return (0.5 * (x + 1.0)).astype(np.float32)

    def decode_batch(self, latents: np.ndarray) -> np.ndarray:
        """Decode ``(N, latent_dim)`` latents to ``(N, 3, R, R)`` images."""
        return np.stack([self.decode(z) for z in latents])


class LatentClassSampler:
    """Samples class-conditional latent vectors.

    Each class owns a centre on a hypersphere; a sample mixes the centre, an
    intra-class jitter and free nuisance dimensions.  The relative magnitude of
    signal vs. jitter controls how hard the classification problem is.
    """

    def __init__(
        self,
        num_classes: int,
        latent_dim: int,
        signal_scale: float = 2.5,
        intra_class_std: float = 0.6,
        nuisance_std: float = 0.5,
        class_seed: int = 0,
    ):
        if num_classes < 2:
            raise ValueError("need at least two classes")
        self.num_classes = num_classes
        self.latent_dim = latent_dim
        self.signal_scale = signal_scale
        self.intra_class_std = intra_class_std
        self.nuisance_std = nuisance_std
        rng = np.random.default_rng(class_seed)
        centres = rng.normal(size=(num_classes, latent_dim)).astype(np.float32)
        centres /= np.linalg.norm(centres, axis=1, keepdims=True)
        self.centres = centres
        # Half the dimensions carry class signal, the rest are nuisance.
        mask = np.zeros(latent_dim, dtype=np.float32)
        mask[rng.permutation(latent_dim)[: latent_dim // 2]] = 1.0
        self.signal_mask = mask

    def sample(self, label: int, rng: np.random.Generator) -> np.ndarray:
        """Draw one latent vector for ``label``."""
        centre = self.centres[label] * self.signal_mask
        jitter = rng.normal(0.0, self.intra_class_std, size=self.latent_dim).astype(np.float32)
        nuisance = (
            rng.normal(0.0, self.nuisance_std, size=self.latent_dim).astype(np.float32)
            * (1.0 - self.signal_mask)
        )
        return self.signal_scale * centre + jitter * self.signal_mask + nuisance

    def sample_batch(self, labels: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return np.stack([self.sample(int(label), rng) for label in labels])
