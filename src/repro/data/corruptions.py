"""Common-corruption generators for robustness evaluation.

A small ImageNet-C-style battery of corruptions, each parameterised by a
severity level in ``{1..5}``.  The robustness ablation uses them to check that
the accuracy advantage of NetBooster-trained TNNs survives input perturbations
(a practical concern for IoT sensors with noisy optics).

All functions take and return ``(N, C, H, W)`` float32 arrays and never modify
their input in place.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = [
    "gaussian_noise",
    "shot_noise",
    "impulse_noise",
    "gaussian_blur",
    "pixelate",
    "brightness",
    "contrast",
    "CORRUPTIONS",
    "corrupt",
    "available_corruptions",
]


def _check_severity(severity: int) -> int:
    if not 1 <= severity <= 5:
        raise ValueError("severity must lie in [1, 5]")
    return int(severity)


def _as_batch(images: np.ndarray) -> np.ndarray:
    images = np.asarray(images, dtype=np.float32)
    if images.ndim != 4:
        raise ValueError(f"expected (N, C, H, W) images, got shape {images.shape}")
    return images


def gaussian_noise(images: np.ndarray, severity: int = 1, seed: int = 0) -> np.ndarray:
    """Additive zero-mean Gaussian noise."""
    severity = _check_severity(severity)
    images = _as_batch(images)
    scale = [0.04, 0.08, 0.12, 0.18, 0.26][severity - 1]
    rng = np.random.default_rng(seed)
    return images + rng.normal(0.0, scale, size=images.shape).astype(np.float32)


def shot_noise(images: np.ndarray, severity: int = 1, seed: int = 0) -> np.ndarray:
    """Poisson (photon-count) noise; stronger on bright pixels."""
    severity = _check_severity(severity)
    images = _as_batch(images)
    photons = [60.0, 25.0, 12.0, 5.0, 3.0][severity - 1]
    rng = np.random.default_rng(seed)
    shifted = images - images.min()
    noisy = rng.poisson(np.maximum(shifted, 0.0) * photons) / photons
    return (noisy + images.min()).astype(np.float32)


def impulse_noise(images: np.ndarray, severity: int = 1, seed: int = 0) -> np.ndarray:
    """Salt-and-pepper noise replacing a fraction of pixels by extremes."""
    severity = _check_severity(severity)
    images = _as_batch(images)
    fraction = [0.01, 0.03, 0.06, 0.10, 0.17][severity - 1]
    rng = np.random.default_rng(seed)
    out = images.copy()
    mask = rng.random(images.shape) < fraction
    salt = rng.random(images.shape) < 0.5
    low, high = float(images.min()), float(images.max())
    out[mask & salt] = high
    out[mask & ~salt] = low
    return out


def gaussian_blur(images: np.ndarray, severity: int = 1, seed: int = 0) -> np.ndarray:
    """Gaussian blur applied independently to each channel."""
    severity = _check_severity(severity)
    images = _as_batch(images)
    sigma = [0.4, 0.7, 1.0, 1.5, 2.0][severity - 1]
    return ndimage.gaussian_filter(images, sigma=(0, 0, sigma, sigma)).astype(np.float32)


def pixelate(images: np.ndarray, severity: int = 1, seed: int = 0) -> np.ndarray:
    """Downsample then nearest-neighbour upsample, destroying fine detail."""
    severity = _check_severity(severity)
    images = _as_batch(images)
    factor = [1, 2, 3, 4, 6][severity - 1]
    if factor == 1:
        return images.copy()
    n, c, h, w = images.shape
    small_h, small_w = max(h // factor, 1), max(w // factor, 1)
    row_idx = (np.arange(h) * small_h // h).clip(0, small_h - 1)
    col_idx = (np.arange(w) * small_w // w).clip(0, small_w - 1)
    small = images[:, :, :: max(h // small_h, 1), :: max(w // small_w, 1)][:, :, :small_h, :small_w]
    return small[:, :, row_idx][:, :, :, col_idx].astype(np.float32)


def brightness(images: np.ndarray, severity: int = 1, seed: int = 0) -> np.ndarray:
    """Additive brightness shift."""
    severity = _check_severity(severity)
    images = _as_batch(images)
    shift = [0.1, 0.2, 0.3, 0.4, 0.5][severity - 1]
    return images + shift


def contrast(images: np.ndarray, severity: int = 1, seed: int = 0) -> np.ndarray:
    """Compress the dynamic range around the per-image mean."""
    severity = _check_severity(severity)
    images = _as_batch(images)
    factor = [0.75, 0.6, 0.45, 0.3, 0.2][severity - 1]
    mean = images.mean(axis=(1, 2, 3), keepdims=True)
    return ((images - mean) * factor + mean).astype(np.float32)


CORRUPTIONS = {
    "gaussian_noise": gaussian_noise,
    "shot_noise": shot_noise,
    "impulse_noise": impulse_noise,
    "gaussian_blur": gaussian_blur,
    "pixelate": pixelate,
    "brightness": brightness,
    "contrast": contrast,
}


def available_corruptions() -> list[str]:
    """Names accepted by :func:`corrupt`."""
    return sorted(CORRUPTIONS)


def corrupt(images: np.ndarray, name: str, severity: int = 1, seed: int = 0) -> np.ndarray:
    """Apply the named corruption at the given severity."""
    if name not in CORRUPTIONS:
        raise KeyError(f"unknown corruption {name!r}; available: {available_corruptions()}")
    return CORRUPTIONS[name](images, severity=severity, seed=seed)
