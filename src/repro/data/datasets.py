"""Synthetic classification datasets standing in for the paper's benchmarks.

``SyntheticImageNet`` plays the role of the large-scale pretraining corpus;
``downstream_dataset`` builds the five transfer targets (CIFAR-100, Cars,
Flowers102, Food101, Pets) from the *same* random decoder but with new class
centres, fewer samples and slightly different difficulty profiles, which is
what makes ImageNet-pretrained features useful for them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .generator import DecoderSpec, LatentClassSampler, RandomImageDecoder

__all__ = [
    "ClassificationDataset",
    "SyntheticImageNet",
    "downstream_dataset",
    "DOWNSTREAM_SPECS",
    "DownstreamSpec",
]


class ClassificationDataset:
    """An in-memory labelled image dataset.

    Attributes
    ----------
    images:
        ``(N, 3, R, R)`` float32 array in ``[0, 1]``.
    labels:
        ``(N,)`` int64 array.
    num_classes:
        Number of distinct labels.
    """

    def __init__(self, images: np.ndarray, labels: np.ndarray, num_classes: int, name: str = "dataset"):
        if len(images) != len(labels):
            raise ValueError("images and labels must have the same length")
        self.images = np.asarray(images, dtype=np.float32)
        self.labels = np.asarray(labels, dtype=np.int64)
        self.num_classes = int(num_classes)
        self.name = name

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    @property
    def resolution(self) -> int:
        return self.images.shape[-1]

    def subset(self, indices: np.ndarray) -> "ClassificationDataset":
        """Return a dataset restricted to ``indices`` (labels preserved)."""
        return ClassificationDataset(
            self.images[indices], self.labels[indices], self.num_classes, name=f"{self.name}-subset"
        )

    def split(self, train_fraction: float, seed: int = 0) -> tuple["ClassificationDataset", "ClassificationDataset"]:
        """Random stratification-free train/validation split."""
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self))
        cut = int(len(self) * train_fraction)
        return self.subset(order[:cut]), self.subset(order[cut:])


def _build_classification_dataset(
    name: str,
    num_classes: int,
    samples_per_class: int,
    decoder: RandomImageDecoder,
    sampler: LatentClassSampler,
    pixel_noise: float,
    seed: int,
) -> ClassificationDataset:
    rng = np.random.default_rng(seed)
    labels = np.repeat(np.arange(num_classes), samples_per_class)
    rng.shuffle(labels)
    latents = sampler.sample_batch(labels, rng)
    images = decoder.decode_batch(latents)
    if pixel_noise > 0:
        images = images + rng.normal(0.0, pixel_noise, size=images.shape).astype(np.float32)
        images = np.clip(images, 0.0, 1.0)
    return ClassificationDataset(images, labels, num_classes, name=name)


class SyntheticImageNet:
    """The large-scale pretraining corpus (stand-in for ImageNet).

    Parameters
    ----------
    num_classes:
        Number of classes; more classes make the task harder and the
        under-fitting of tiny models more pronounced.
    samples_per_class / val_samples_per_class:
        Training / validation samples generated per class.
    resolution:
        Output image resolution (must be a multiple of 4; the decoder's base
        size is ``resolution // 4``).
    decoder_seed:
        Seed of the shared random decoder.  Downstream datasets built with the
        same seed share low-level image statistics, which is what makes the
        pretrained features transferable.
    """

    def __init__(
        self,
        num_classes: int = 16,
        samples_per_class: int = 60,
        val_samples_per_class: int = 15,
        resolution: int = 24,
        latent_dim: int = 32,
        signal_scale: float = 2.5,
        intra_class_std: float = 0.6,
        nuisance_std: float = 0.5,
        pixel_noise: float = 0.02,
        decoder_seed: int = 1234,
        seed: int = 0,
    ):
        if resolution % 4 != 0:
            raise ValueError("resolution must be a multiple of 4")
        spec = DecoderSpec(latent_dim=latent_dim, base_size=resolution // 4, seed=decoder_seed)
        self.decoder = RandomImageDecoder(spec)
        self.sampler = LatentClassSampler(
            num_classes,
            latent_dim,
            signal_scale=signal_scale,
            intra_class_std=intra_class_std,
            nuisance_std=nuisance_std,
            class_seed=seed + 17,
        )
        self.num_classes = num_classes
        self.train = _build_classification_dataset(
            "synthetic-imagenet-train",
            num_classes,
            samples_per_class,
            self.decoder,
            self.sampler,
            pixel_noise,
            seed,
        )
        self.val = _build_classification_dataset(
            "synthetic-imagenet-val",
            num_classes,
            val_samples_per_class,
            self.decoder,
            self.sampler,
            pixel_noise,
            seed + 1,
        )


@dataclass(frozen=True)
class DownstreamSpec:
    """Difficulty profile of one downstream transfer dataset."""

    num_classes: int
    samples_per_class: int
    val_samples_per_class: int
    intra_class_std: float
    pixel_noise: float
    class_seed: int


#: Profiles loosely mirroring the relative difficulty of the paper's targets:
#: fine-grained sets (Cars, Flowers) have more classes and tighter clusters,
#: Food101 is noisier, Pets is small.
DOWNSTREAM_SPECS: dict[str, DownstreamSpec] = {
    "cifar100": DownstreamSpec(num_classes=10, samples_per_class=45, val_samples_per_class=16,
                               intra_class_std=0.70, pixel_noise=0.03, class_seed=101),
    "cars": DownstreamSpec(num_classes=12, samples_per_class=30, val_samples_per_class=16,
                           intra_class_std=0.55, pixel_noise=0.02, class_seed=202),
    "flowers102": DownstreamSpec(num_classes=12, samples_per_class=24, val_samples_per_class=16,
                                 intra_class_std=0.50, pixel_noise=0.02, class_seed=303),
    "food101": DownstreamSpec(num_classes=10, samples_per_class=36, val_samples_per_class=16,
                              intra_class_std=0.75, pixel_noise=0.05, class_seed=404),
    "pets": DownstreamSpec(num_classes=8, samples_per_class=27, val_samples_per_class=16,
                           intra_class_std=0.65, pixel_noise=0.03, class_seed=505),
}


def downstream_dataset(
    name: str,
    resolution: int = 24,
    latent_dim: int = 32,
    decoder_seed: int = 1234,
    seed: int = 0,
) -> tuple[ClassificationDataset, ClassificationDataset]:
    """Build the train/val split of a named downstream dataset.

    The decoder seed defaults to the one used by :class:`SyntheticImageNet`
    so that pretrained features transfer; pass a different seed to simulate an
    unrelated domain.
    """
    if name not in DOWNSTREAM_SPECS:
        raise KeyError(f"unknown downstream dataset {name!r}; available: {sorted(DOWNSTREAM_SPECS)}")
    spec = DOWNSTREAM_SPECS[name]
    decoder = RandomImageDecoder(DecoderSpec(latent_dim=latent_dim, base_size=resolution // 4, seed=decoder_seed))
    sampler = LatentClassSampler(
        spec.num_classes,
        latent_dim,
        intra_class_std=spec.intra_class_std,
        class_seed=spec.class_seed,
    )
    train = _build_classification_dataset(
        f"{name}-train", spec.num_classes, spec.samples_per_class, decoder, sampler, spec.pixel_noise, seed
    )
    val = _build_classification_dataset(
        f"{name}-val", spec.num_classes, spec.val_samples_per_class, decoder, sampler, spec.pixel_noise, seed + 1
    )
    return train, val
