"""Minibatch iteration over in-memory datasets."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .datasets import ClassificationDataset
from .transforms import Transform

__all__ = ["DataLoader"]


class DataLoader:
    """Iterate over a :class:`ClassificationDataset` in shuffled minibatches.

    Parameters
    ----------
    dataset:
        The dataset to iterate over.
    batch_size:
        Number of samples per batch (the last batch may be smaller unless
        ``drop_last`` is set).
    shuffle:
        Reshuffle indices at the start of every epoch.
    transform:
        Optional per-image augmentation applied on the fly.
    seed:
        Seed of the loader's private RNG (shuffling and augmentations).
    """

    def __init__(
        self,
        dataset: ClassificationDataset,
        batch_size: int = 32,
        shuffle: bool = True,
        transform: Transform | None = None,
        drop_last: bool = False,
        seed: int = 0,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.transform = transform
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        if self.drop_last:
            return len(self.dataset) // self.batch_size
        return (len(self.dataset) + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(indices)
        for start in range(0, len(indices), self.batch_size):
            batch_idx = indices[start : start + self.batch_size]
            if self.drop_last and len(batch_idx) < self.batch_size:
                break
            images = self.dataset.images[batch_idx]
            labels = self.dataset.labels[batch_idx]
            if self.transform is not None:
                images = np.stack([self.transform(img, self._rng) for img in images])
            yield images.astype(np.float32), labels
