"""Minibatch iteration: batched transforms + double-buffered prefetch.

The loader is a small pipeline:

1. at the start of an epoch the shuffle order and one RNG seed *per batch*
   are drawn from the loader's private generator — all randomness is fixed
   up front, so batch construction is order-independent;
2. each batch is assembled by fancy-indexing the dataset and applying the
   transform *vectorised across the batch* (:meth:`Transform.batch`);
3. with ``prefetch`` enabled, a daemon thread assembles batches ahead of the
   consumer into a small bounded queue (double buffering), overlapping
   augmentation with the training step.

Because of step 1 the sample stream is **identical with prefetch on or off**
— toggling the pipeline never perturbs training trajectories or cache
fingerprints.

Sharded loading (``shard=(rank, world)``) rides on the same property: every
worker of a data-parallel run draws the *same* epoch plan (the shuffle order
and per-batch seeds consume the loader RNG identically regardless of the
shard), then yields only the global batch indices assigned to its rank
(``batch_index % world == rank``).  Shards are therefore disjoint, cover the
epoch exactly once, batch ``b`` has identical contents no matter which worker
builds it, and ``shard=(0, 1)`` is byte-identical to an unsharded loader.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Iterator

import numpy as np

from .datasets import ClassificationDataset
from .transforms import Transform

__all__ = ["DataLoader"]

_SEED_MAX = 2**63
_ERROR = object()  # prefetch-queue marker for producer-side exceptions


def _apply_transform(transform, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Apply ``transform`` to a batch, preferring its vectorised form.

    Plain callables (``image, rng -> image``) without a ``batch`` method are
    applied per image, preserving the pre-pipeline loader contract.
    """
    batch_fn = getattr(transform, "batch", None)
    if batch_fn is not None:
        return batch_fn(images, rng)
    return np.stack([transform(image, rng) for image in images])


class DataLoader:
    """Iterate over a :class:`ClassificationDataset` in shuffled minibatches.

    Parameters
    ----------
    dataset:
        The dataset to iterate over.
    batch_size:
        Number of samples per batch (the last batch may be smaller unless
        ``drop_last`` is set).
    shuffle:
        Reshuffle indices at the start of every epoch.
    transform:
        Optional augmentation applied on the fly.  :class:`Transform`
        subclasses are applied batched (vectorised across the batch); plain
        ``(image, rng)`` callables are applied per image.
    drop_last:
        Drop the final short batch.
    seed:
        Seed of the loader's private RNG (shuffling and augmentations).
    prefetch:
        Assemble batches on a background thread, ``prefetch_depth`` batches
        ahead.  The sample stream is identical either way; disabling simply
        assembles each batch inline (eager fallback).
    prefetch_depth:
        Queue capacity of the prefetcher (default 2: double buffering).
    shard:
        Optional ``(rank, world_size)`` pair for data-parallel training.  The
        epoch plan (shuffle order + per-batch transform seeds) is drawn for
        the *whole* epoch on every worker, then only global batch indices
        with ``index % world_size == rank`` are yielded — shards are disjoint
        and jointly cover the epoch exactly once.
    """

    def __init__(
        self,
        dataset: ClassificationDataset,
        batch_size: int = 32,
        shuffle: bool = True,
        transform: Transform | Callable | None = None,
        drop_last: bool = False,
        seed: int = 0,
        prefetch: bool = True,
        prefetch_depth: int = 2,
        shard: tuple[int, int] | None = None,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if prefetch_depth <= 0:
            raise ValueError("prefetch_depth must be positive")
        if shard is not None:
            rank, world = shard
            if world <= 0 or not 0 <= rank < world:
                raise ValueError(f"invalid shard {shard}: need 0 <= rank < world_size")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.transform = transform
        self.drop_last = drop_last
        self.prefetch = prefetch
        self.prefetch_depth = prefetch_depth
        self.shard = shard
        self._rng = np.random.default_rng(seed)

    @property
    def num_global_batches(self) -> int:
        """Batches in one epoch across *all* shards (the unsharded length)."""
        if self.drop_last:
            return len(self.dataset) // self.batch_size
        return (len(self.dataset) + self.batch_size - 1) // self.batch_size

    def _assigned_batches(self) -> range:
        """Global batch indices this loader yields, in order."""
        total = self.num_global_batches
        if self.shard is None:
            return range(total)
        rank, world = self.shard
        return range(rank, total, world)

    def __len__(self) -> int:
        return len(self._assigned_batches())

    # ------------------------------------------------------------------ #
    # batch assembly
    # ------------------------------------------------------------------ #
    def _epoch_plan(self) -> tuple[np.ndarray, np.ndarray | None]:
        """Draw the epoch's shuffle order and per-batch transform seeds.

        All RNG consumption happens here, synchronously, so the resulting
        batches do not depend on *when* (or on which thread) they are built —
        the stream is byte-identical with prefetch on or off.  Consumption is
        also shard-independent (the plan always covers the whole epoch), so
        every worker of a data-parallel run derives the identical plan from
        the same seed.
        """
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(indices)
        seeds = None
        if self.transform is not None:
            seeds = self._rng.integers(0, _SEED_MAX, size=self.num_global_batches, dtype=np.int64)
        return indices, seeds

    def _make_batch(
        self, indices: np.ndarray, seeds: np.ndarray | None, batch_index: int
    ) -> tuple[np.ndarray, np.ndarray]:
        start = batch_index * self.batch_size
        batch_idx = indices[start : start + self.batch_size]
        images = self.dataset.images[batch_idx]
        labels = self.dataset.labels[batch_idx]
        if self.transform is not None:
            rng = np.random.default_rng(int(seeds[batch_index]))
            images = _apply_transform(self.transform, images, rng)
        return images.astype(np.float32, copy=False), labels

    # ------------------------------------------------------------------ #
    # iteration
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        indices, seeds = self._epoch_plan()
        assigned = self._assigned_batches()
        if not self.prefetch or len(assigned) <= 1:
            for batch_index in assigned:
                yield self._make_batch(indices, seeds, batch_index)
            return
        yield from self._iter_prefetched(indices, seeds, assigned)

    def _iter_prefetched(
        self, indices: np.ndarray, seeds: np.ndarray | None, assigned: range
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        out: queue.Queue = queue.Queue(maxsize=self.prefetch_depth)
        stop = threading.Event()
        sentinel = object()

        def produce() -> None:
            try:
                for batch_index in assigned:
                    if stop.is_set():
                        return
                    item = self._make_batch(indices, seeds, batch_index)
                    while not stop.is_set():
                        try:
                            out.put(item, timeout=0.1)
                            break
                        except queue.Full:
                            continue
            except BaseException as exc:  # surfaced on the consumer side
                out.put((_ERROR, exc))
                return
            out.put(sentinel)

        worker = threading.Thread(target=produce, name="dataloader-prefetch", daemon=True)
        worker.start()
        try:
            while True:
                item = out.get()
                if item is sentinel:
                    break
                if item[0] is _ERROR:
                    raise item[1]
                yield item
        finally:
            stop.set()
            # Unblock a producer waiting on a full queue, then let it exit.
            try:
                while True:
                    out.get_nowait()
            except queue.Empty:
                pass
