"""Data-augmentation transforms operating on ``(3, H, W)`` float arrays.

The paper's Fig. 1(a) argument is that strong augmentation/regularisation,
which helps large DNNs, *hurts* tiny networks because they under-fit.  The
transforms here implement the standard recipes (flip/crop/erasing/colour
jitter and a light RandAugment-style policy) so that this comparison can be
reproduced on the synthetic corpus.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Transform",
    "Compose",
    "RandomHorizontalFlip",
    "RandomCrop",
    "RandomErasing",
    "ColorJitter",
    "GaussianNoise",
    "RandAugmentLite",
    "Normalize",
]


class Transform:
    """Base class: transforms are callables ``image -> image``."""

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError


class Compose(Transform):
    """Apply transforms in sequence."""

    def __init__(self, transforms: list[Transform]):
        self.transforms = list(transforms)

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for transform in self.transforms:
            image = transform(image, rng)
        return image


class RandomHorizontalFlip(Transform):
    """Flip the image left-right with probability ``p``."""

    def __init__(self, p: float = 0.5):
        self.p = p

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if rng.random() < self.p:
            return image[:, :, ::-1].copy()
        return image


class RandomCrop(Transform):
    """Pad by ``padding`` pixels then crop back to the original size."""

    def __init__(self, padding: int = 2):
        self.padding = padding

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.padding == 0:
            return image
        c, h, w = image.shape
        padded = np.pad(image, ((0, 0), (self.padding, self.padding), (self.padding, self.padding)))
        top = int(rng.integers(0, 2 * self.padding + 1))
        left = int(rng.integers(0, 2 * self.padding + 1))
        return padded[:, top : top + h, left : left + w].copy()


class RandomErasing(Transform):
    """Cutout-style square erasing (a strong regulariser)."""

    def __init__(self, p: float = 0.5, size_fraction: float = 0.3):
        self.p = p
        self.size_fraction = size_fraction

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if rng.random() >= self.p:
            return image
        c, h, w = image.shape
        size = max(int(min(h, w) * self.size_fraction), 1)
        top = int(rng.integers(0, h - size + 1))
        left = int(rng.integers(0, w - size + 1))
        out = image.copy()
        out[:, top : top + size, left : left + size] = rng.random()
        return out


class ColorJitter(Transform):
    """Random brightness/contrast scaling."""

    def __init__(self, brightness: float = 0.2, contrast: float = 0.2):
        self.brightness = brightness
        self.contrast = contrast

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = image
        if self.brightness > 0:
            out = out + rng.uniform(-self.brightness, self.brightness)
        if self.contrast > 0:
            factor = 1.0 + rng.uniform(-self.contrast, self.contrast)
            mean = out.mean()
            out = (out - mean) * factor + mean
        return np.clip(out, 0.0, 1.0).astype(np.float32)


class GaussianNoise(Transform):
    """Additive pixel noise."""

    def __init__(self, std: float = 0.05):
        self.std = std

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        noisy = image + rng.normal(0.0, self.std, size=image.shape).astype(np.float32)
        return np.clip(noisy, 0.0, 1.0)


class RandAugmentLite(Transform):
    """A small RandAugment-style policy: apply ``num_ops`` random transforms."""

    def __init__(self, num_ops: int = 2, magnitude: float = 0.5):
        self.num_ops = num_ops
        self.pool: list[Transform] = [
            RandomHorizontalFlip(p=1.0),
            RandomCrop(padding=max(int(2 * magnitude), 1)),
            RandomErasing(p=1.0, size_fraction=0.2 + 0.3 * magnitude),
            ColorJitter(brightness=0.3 * magnitude, contrast=0.3 * magnitude),
            GaussianNoise(std=0.1 * magnitude),
        ]

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        indices = rng.choice(len(self.pool), size=self.num_ops, replace=False)
        for index in indices:
            image = self.pool[index](image, rng)
        return image


class Normalize(Transform):
    """Standardise with fixed per-channel statistics."""

    def __init__(self, mean: float = 0.5, std: float = 0.25):
        self.mean = mean
        self.std = std

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return ((image - self.mean) / self.std).astype(np.float32)
