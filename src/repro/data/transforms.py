"""Data-augmentation transforms operating on ``(3, H, W)`` float arrays.

The paper's Fig. 1(a) argument is that strong augmentation/regularisation,
which helps large DNNs, *hurts* tiny networks because they under-fit.  The
transforms here implement the standard recipes (flip/crop/erasing/colour
jitter and a light RandAugment-style policy) so that this comparison can be
reproduced on the synthetic corpus.

Every transform has two entry points:

* ``__call__(image, rng)`` — the original per-image form;
* ``batch(images, rng)`` — vectorised across a ``(N, 3, H, W)`` batch, used
  by the prefetching :class:`~repro.data.dataloader.DataLoader`.  The default
  implementation falls back to the per-image loop, so custom transforms only
  need ``__call__``.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = [
    "Transform",
    "Compose",
    "RandomHorizontalFlip",
    "RandomCrop",
    "RandomErasing",
    "ColorJitter",
    "GaussianNoise",
    "RandAugmentLite",
    "Normalize",
]


class Transform:
    """Base class: transforms are callables ``image -> image``."""

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def batch(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Apply the transform across a ``(N, C, H, W)`` batch.

        Subclasses override this with a vectorised implementation; the
        default applies ``__call__`` per image.
        """
        return np.stack([self(image, rng) for image in images])


class Compose(Transform):
    """Apply transforms in sequence."""

    def __init__(self, transforms: list[Transform]):
        self.transforms = list(transforms)

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for transform in self.transforms:
            image = transform(image, rng)
        return image

    def batch(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for transform in self.transforms:
            images = (
                transform.batch(images, rng)
                if isinstance(transform, Transform)
                else np.stack([transform(image, rng) for image in images])
            )
        return images


class RandomHorizontalFlip(Transform):
    """Flip the image left-right with probability ``p``."""

    def __init__(self, p: float = 0.5):
        self.p = p

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if rng.random() < self.p:
            return image[:, :, ::-1].copy()
        return image

    def batch(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        flip = rng.random(len(images)) < self.p
        if not flip.any():
            return images
        out = images.copy()
        out[flip] = out[flip, :, :, ::-1]
        return out


class RandomCrop(Transform):
    """Pad by ``padding`` pixels then crop back to the original size."""

    def __init__(self, padding: int = 2):
        self.padding = padding

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.padding == 0:
            return image
        c, h, w = image.shape
        padded = np.pad(image, ((0, 0), (self.padding, self.padding), (self.padding, self.padding)))
        top = int(rng.integers(0, 2 * self.padding + 1))
        left = int(rng.integers(0, 2 * self.padding + 1))
        return padded[:, top : top + h, left : left + w].copy()

    def batch(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.padding == 0:
            return images
        n, c, h, w = images.shape
        pad = self.padding
        padded = np.pad(images, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        tops = rng.integers(0, 2 * pad + 1, size=n)
        lefts = rng.integers(0, 2 * pad + 1, size=n)
        # One gather over the zero-copy window view replaces N slice-copies.
        windows = sliding_window_view(padded, (h, w), axis=(2, 3))
        return windows[np.arange(n), :, tops, lefts]


class RandomErasing(Transform):
    """Cutout-style square erasing (a strong regulariser)."""

    def __init__(self, p: float = 0.5, size_fraction: float = 0.3):
        self.p = p
        self.size_fraction = size_fraction

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if rng.random() >= self.p:
            return image
        c, h, w = image.shape
        size = max(int(min(h, w) * self.size_fraction), 1)
        top = int(rng.integers(0, h - size + 1))
        left = int(rng.integers(0, w - size + 1))
        out = image.copy()
        out[:, top : top + size, left : left + size] = rng.random()
        return out

    def batch(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n, c, h, w = images.shape
        erase = rng.random(n) < self.p
        if not erase.any():
            return images
        size = max(int(min(h, w) * self.size_fraction), 1)
        tops = rng.integers(0, h - size + 1, size=n)
        lefts = rng.integers(0, w - size + 1, size=n)
        fills = rng.random(n)
        out = images.copy()
        for k in np.flatnonzero(erase):
            out[k, :, tops[k] : tops[k] + size, lefts[k] : lefts[k] + size] = fills[k]
        return out


class ColorJitter(Transform):
    """Random brightness/contrast scaling."""

    def __init__(self, brightness: float = 0.2, contrast: float = 0.2):
        self.brightness = brightness
        self.contrast = contrast

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = image
        if self.brightness > 0:
            out = out + rng.uniform(-self.brightness, self.brightness)
        if self.contrast > 0:
            factor = 1.0 + rng.uniform(-self.contrast, self.contrast)
            mean = out.mean()
            out = (out - mean) * factor + mean
        return np.clip(out, 0.0, 1.0).astype(np.float32)

    def batch(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = images.astype(np.float32, copy=True)
        n = len(images)
        if self.brightness > 0:
            offsets = rng.uniform(-self.brightness, self.brightness, size=(n, 1, 1, 1))
            out += offsets.astype(np.float32)
        if self.contrast > 0:
            factors = (1.0 + rng.uniform(-self.contrast, self.contrast, size=(n, 1, 1, 1))).astype(
                np.float32
            )
            means = out.mean(axis=(1, 2, 3), keepdims=True)
            out -= means
            out *= factors
            out += means
        return np.clip(out, 0.0, 1.0, out=out)


class GaussianNoise(Transform):
    """Additive pixel noise."""

    def __init__(self, std: float = 0.05):
        self.std = std

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        noisy = image + rng.normal(0.0, self.std, size=image.shape).astype(np.float32)
        return np.clip(noisy, 0.0, 1.0)

    def batch(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        noisy = images + rng.normal(0.0, self.std, size=images.shape).astype(np.float32)
        return np.clip(noisy, 0.0, 1.0, out=noisy)


class RandAugmentLite(Transform):
    """A small RandAugment-style policy: apply ``num_ops`` random transforms.

    The op *choice* is inherently per-image, so the batch form loops images
    but each chosen op still runs its (single-image) fast path.
    """

    def __init__(self, num_ops: int = 2, magnitude: float = 0.5):
        self.num_ops = num_ops
        self.pool: list[Transform] = [
            RandomHorizontalFlip(p=1.0),
            RandomCrop(padding=max(int(2 * magnitude), 1)),
            RandomErasing(p=1.0, size_fraction=0.2 + 0.3 * magnitude),
            ColorJitter(brightness=0.3 * magnitude, contrast=0.3 * magnitude),
            GaussianNoise(std=0.1 * magnitude),
        ]

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        indices = rng.choice(len(self.pool), size=self.num_ops, replace=False)
        for index in indices:
            image = self.pool[index](image, rng)
        return image


class Normalize(Transform):
    """Standardise with fixed per-channel statistics."""

    def __init__(self, mean: float = 0.5, std: float = 0.25):
        self.mean = mean
        self.std = std

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return ((image - self.mean) / self.std).astype(np.float32)

    def batch(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = images.astype(np.float32, copy=True)
        out -= np.float32(self.mean)
        out /= np.float32(self.std)
        return out
