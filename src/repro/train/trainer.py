"""Classification training loop shared by every experiment in the repo.

The :class:`Trainer` implements the paper's recipe — SGD with momentum,
cosine-annealed learning rate, optional label smoothing — and is deliberately
pluggable:

* the loss is computed by a *loss computer* object so that knowledge
  distillation, NetAug auxiliary supervision and RocketLaunching joint
  training can reuse the same loop;
* per-iteration callbacks allow Progressive Linearization Tuning to decay the
  activation slopes between optimiser steps.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from .. import nn
from ..data.dataloader import DataLoader
from ..data.datasets import ClassificationDataset
from ..data.transforms import Transform
from ..nn import functional as F
from ..optim import FlatSGD, SGD, ConstantLR, CosineAnnealingLR, LinearWarmup, StepLR
from ..utils.config import ExperimentConfig
from .metrics import AverageMeter, accuracy

__all__ = ["LossComputer", "StandardLoss", "TrainingHistory", "Trainer", "evaluate"]


class LossComputer(Protocol):
    """Interface for pluggable loss computation.

    Implementations receive the model plus a batch and return the scalar loss
    tensor and the logits used for accuracy tracking.
    """

    def __call__(
        self, model: nn.Module, images: nn.Tensor, labels: np.ndarray
    ) -> tuple[nn.Tensor, nn.Tensor]: ...


class StandardLoss:
    """Plain cross-entropy with optional label smoothing."""

    def __init__(self, label_smoothing: float = 0.0):
        self.label_smoothing = label_smoothing

    def __call__(
        self, model: nn.Module, images: nn.Tensor, labels: np.ndarray
    ) -> tuple[nn.Tensor, nn.Tensor]:
        logits = model(images)
        loss = F.cross_entropy(logits, labels, label_smoothing=self.label_smoothing)
        return loss, logits


@dataclass
class TrainingHistory:
    """Per-epoch statistics collected by :meth:`Trainer.fit`."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    learning_rate: list[float] = field(default_factory=list)

    @property
    def best_val_accuracy(self) -> float:
        return max(self.val_accuracy) if self.val_accuracy else float("nan")

    @property
    def final_val_accuracy(self) -> float:
        return self.val_accuracy[-1] if self.val_accuracy else float("nan")

    def extend(self, other: "TrainingHistory") -> None:
        """Append another history (used when training happens in phases)."""
        self.train_loss.extend(other.train_loss)
        self.train_accuracy.extend(other.train_accuracy)
        self.val_accuracy.extend(other.val_accuracy)
        self.learning_rate.extend(other.learning_rate)


def _build_scheduler(optimizer: SGD, config: ExperimentConfig, total_epochs: int):
    if config.lr_schedule == "cosine":
        main = CosineAnnealingLR(optimizer, total_steps=max(total_epochs - config.warmup_epochs, 1), min_lr=config.min_lr)
    elif config.lr_schedule == "step":
        main = StepLR(optimizer, step_size=max(total_epochs // 3, 1))
    elif config.lr_schedule == "constant":
        main = ConstantLR(optimizer)
    else:
        raise ValueError(f"unknown lr_schedule {config.lr_schedule!r}")
    if config.warmup_epochs > 0:
        return LinearWarmup(optimizer, warmup_steps=config.warmup_epochs, after=main)
    return main


def evaluate(
    model: nn.Module,
    dataset: ClassificationDataset,
    batch_size: int = 128,
    compiled: bool = True,
) -> float:
    """Top-1 accuracy (percent) of ``model`` on ``dataset``.

    By default the model is lowered through :mod:`repro.runtime` (BatchNorm
    folding + fused conv/bias/activation kernels), which is substantially
    faster than the eager tape on CPU.  Set ``compiled=False`` to force the
    eager path; compilation failures fall back to it automatically.
    """
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    was_training = model.training
    model.eval()
    forward = None
    if compiled:
        try:
            from ..runtime import compile_model

            net = compile_model(model, mode="infer")
            forward = net.numpy_forward
        except Exception:
            forward = None
    correct_meter = AverageMeter("accuracy")
    with nn.no_grad():
        for images, labels in loader:
            if forward is not None:
                logits = forward(np.ascontiguousarray(images, dtype=np.float32))
            else:
                logits = model(nn.Tensor(images)).numpy()
            correct_meter.update(accuracy(logits, labels), n=len(labels))
    model.train(was_training)
    return correct_meter.average


class Trainer:
    """Generic classification trainer.

    Parameters
    ----------
    model:
        Network to optimise.
    config:
        Hyper-parameters (epochs, batch size, optimiser settings, ...).
    loss_computer:
        Pluggable loss; defaults to cross-entropy with the config's label
        smoothing.
    train_transform:
        Optional data augmentation applied to training batches.
    iteration_callbacks:
        Called (with the iteration index) after every optimiser step — PLT
        hooks its alpha schedule in here.
    epoch_callbacks:
        Called (with the epoch index and the running history) after every
        epoch.
    compile:
        Route ``train_step`` through the fused training runtime
        (``repro.compile(model, mode="train")``) when the model and loss can
        be lowered; the eager tape remains as automatic fallback and the two
        paths are bit-identical.  Disable to force the eager path (used by
        the parity tests and benchmarks), or pass ``"auto"`` to race both
        paths on the first training batch and keep the faster one — the race
        is side-effect-free (batch-norm statistics, gradients and dropout RNG
        states are snapshot and restored), and because the two paths are
        bit-identical the choice never changes the training trajectory.
    optimizer:
        Optional pre-built optimiser (the distributed trainer injects its
        gradient-synchronising :class:`~repro.optim.FlatSGD` subclass here).
        Defaults to a fresh ``FlatSGD`` over ``model.parameters()``.
    """

    def __init__(
        self,
        model: nn.Module,
        config: ExperimentConfig,
        loss_computer: LossComputer | None = None,
        train_transform: Transform | None = None,
        iteration_callbacks: list[Callable[[int], None]] | None = None,
        epoch_callbacks: list[Callable[[int, TrainingHistory], None]] | None = None,
        compile: bool | str = True,
        optimizer: SGD | None = None,
    ):
        if compile not in (True, False, "auto"):
            raise ValueError(f"compile must be True, False or 'auto', got {compile!r}")
        self.model = model
        self.config = config
        self.loss_computer = loss_computer or StandardLoss(config.label_smoothing)
        self.train_transform = train_transform
        self.iteration_callbacks = list(iteration_callbacks or [])
        self.epoch_callbacks = list(epoch_callbacks or [])
        # FlatSGD applies the exact same per-element update as SGD but as a
        # handful of whole-model vectorised ops over a flat buffer.
        self.optimizer = optimizer if optimizer is not None else FlatSGD(
            model.parameters(),
            lr=config.lr,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
        self.scheduler = _build_scheduler(self.optimizer, config, config.epochs)
        self.global_iteration = 0
        self._compile_enabled = compile
        self._compiled_step = None
        self._compile_attempted = False
        self._failed_signature = None
        self.auto_choice: str | None = None

    def fit(
        self,
        train_set: ClassificationDataset,
        val_set: ClassificationDataset | None = None,
        epochs: int | None = None,
    ) -> TrainingHistory:
        """Train for ``epochs`` (default: the config value) and return history."""
        epochs = epochs if epochs is not None else self.config.epochs
        history = TrainingHistory()
        loader = DataLoader(
            train_set,
            batch_size=self.config.batch_size,
            shuffle=True,
            transform=self.train_transform,
            seed=self.config.seed,
        )
        for epoch in range(epochs):
            lr = self.scheduler.step()
            loss_meter = AverageMeter("loss")
            acc_meter = AverageMeter("accuracy")
            self.model.train()
            for images, labels in loader:
                loss, logits = self.train_step(images, labels)
                loss_meter.update(loss, n=len(labels))
                acc_meter.update(accuracy(logits, labels), n=len(labels))
            history.train_loss.append(loss_meter.average)
            history.train_accuracy.append(acc_meter.average)
            history.learning_rate.append(lr)
            if val_set is not None:
                history.val_accuracy.append(evaluate(self.model, val_set, self.config.batch_size))
            for callback in self.epoch_callbacks:
                callback(epoch, history)
        return history

    def _ensure_compiled(self):
        """Build (or rebuild) the fused train step; ``None`` when unsupported.

        The compiled program holds live references to the model's modules and
        parameters, so weight updates need no recompilation; a structural
        edit (swapped submodule / replaced parameter) is detected via
        :meth:`~repro.runtime.TrainStep.matches` and triggers a recompile.
        """
        if not self._compile_enabled:
            return None
        step = self._compiled_step
        if step is not None and step.matches(self.model):
            return step
        from ..runtime import CompileError, compile_model
        from ..runtime.training import structure_signature

        if step is None and self._compile_attempted:
            # Unsupported (or failed) at the last attempt: retry only after a
            # structural edit, which may have made the model compilable.
            if structure_signature(self.model) == self._failed_signature:
                return None
        self._compile_attempted = True
        try:
            self._compiled_step = compile_model(
                self.model, mode="train", loss=self.loss_computer, optimizer=self.optimizer
            )
        except CompileError:
            # Expected for unlowerable losses/models (KD, detection heads...):
            # the eager tape is the documented, bit-identical fallback.
            self._compiled_step = None
        except Exception:
            self._compiled_step = None
            warnings.warn(
                "repro.compile(mode='train') raised; training continues on the "
                "eager path (results are identical, throughput is lower)",
                RuntimeWarning,
                stacklevel=2,
            )
        if self._compiled_step is None:
            self._failed_signature = structure_signature(self.model)
        return self._compiled_step

    # ------------------------------------------------------------------ #
    # auto path selection
    # ------------------------------------------------------------------ #
    def _forward_state_snapshot(self):
        """Copy every array a forward/backward pass mutates besides params.

        Parameters are untouched without an ``optimizer.step()``; what a bare
        forward+backward perturbs is (a) batch-norm running statistics (any
        module buffer), (b) the flat gradient buffer, and (c) module-local
        RNGs (dropout).  All three are snapshot so the timing race in
        ``compile="auto"`` leaves the training trajectory untouched.
        """
        buffers = [(buf, np.copy(buf)) for _, buf in self.model.named_buffers()]
        rngs = []
        for _, module in self.model.named_modules():
            rng = getattr(module, "_rng", None)
            if isinstance(rng, np.random.Generator):
                rngs.append((rng, rng.bit_generator.state))
        return buffers, rngs

    def _restore_forward_state(self, snapshot) -> None:
        buffers, rngs = snapshot
        for buf, saved in buffers:
            buf[...] = saved
        for rng, state in rngs:
            rng.bit_generator.state = state

    def _resolve_auto_path(self, images: np.ndarray, labels: np.ndarray) -> None:
        """Race the eager tape against the compiled step and keep the winner.

        Each contender runs one warmup pass (compilation, workspace
        allocation) plus two timed passes; the best time wins.  Both paths
        are bit-identical, so whichever wins, results do not change — the
        crossover between them is workload-dependent (the fused step saves
        tape construction but the kernels dominate at large batches), which
        is why it is measured instead of hard-coded.
        """
        self._compile_enabled = True
        step = self._ensure_compiled()
        if step is None:
            self._compile_enabled = False
            self.auto_choice = "eager"
            return
        snapshot = self._forward_state_snapshot()
        try:
            def run_eager():
                self.optimizer.zero_grad()
                loss, _ = self.loss_computer(self.model, nn.Tensor(images), labels)
                loss.backward()

            def run_compiled():
                self.optimizer.zero_grad()
                step(images, labels)

            timings = {}
            for name, fn in (("eager", run_eager), ("compiled", run_compiled)):
                fn()  # warmup: JIT-ish costs (workspaces, caches) stay out of the race
                best = float("inf")
                for _ in range(2):
                    start = time.perf_counter()
                    fn()
                    best = min(best, time.perf_counter() - start)
                timings[name] = best
            self._compile_enabled = timings["compiled"] <= timings["eager"]
            self.auto_choice = "compiled" if self._compile_enabled else "eager"
        finally:
            self._restore_forward_state(snapshot)
            self.optimizer.zero_grad()

    def train_step(self, images: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
        """One optimiser update; returns the loss value and detached logits.

        Routes through the compiled training runtime when available (fused
        forward+backward kernels, gradients written into the optimiser's flat
        buffer); otherwise runs the eager tape.  Both paths are numerically
        identical.
        """
        if self._compile_enabled == "auto" and self.model.training:
            self._resolve_auto_path(images, labels)
        compiled = self._ensure_compiled() if self.model.training else None
        self.optimizer.zero_grad()
        if compiled is not None:
            loss_value, logits_arr = compiled(images, labels)
        else:
            inputs = nn.Tensor(images)
            loss, logits = self.loss_computer(self.model, inputs, labels)
            loss.backward()
            loss_value, logits_arr = loss.item(), logits.numpy()
        self.optimizer.step()
        self.global_iteration += 1
        for callback in self.iteration_callbacks:
            callback(self.global_iteration)
        return loss_value, logits_arr

    def evaluate(self, dataset: ClassificationDataset) -> float:
        """Top-1 accuracy (percent) on ``dataset``."""
        return evaluate(self.model, dataset, self.config.batch_size)

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #
    def save_checkpoint(self, path: str, ema=None, extra: dict | None = None) -> None:
        """Write model + optimiser + schedule state to one ``.npz`` artifact.

        The archive holds the full model state dict (parameters *and*
        buffers, i.e. batch-norm running statistics), the optimiser's flat
        momentum buffer, the scheduler position and the iteration counter —
        everything needed for a bitwise resume.  Pass an
        :class:`~repro.optim.ModelEMA` as ``ema`` to include its shadow
        buffers, and ``extra`` for scalar caller metadata (epoch index, best
        accuracy, ...).  Restore with :meth:`load_checkpoint` on a trainer
        built over an identically-constructed model.
        """
        import os

        payload: dict[str, np.ndarray] = {}
        for name, value in self.model.state_dict().items():
            payload[f"model::{name}"] = value
        if hasattr(self.optimizer, "state_dict"):
            for name, value in self.optimizer.state_dict().items():
                payload[f"opt::{name}"] = np.asarray(value)
        payload["sched::last_step"] = np.asarray(self.scheduler.last_step)
        after = getattr(self.scheduler, "after", None)
        if after is not None:
            payload["sched::after_last_step"] = np.asarray(after.last_step)
        payload["trainer::global_iteration"] = np.asarray(self.global_iteration)
        if ema is not None:
            for name, value in ema.shadow.items():
                payload[f"ema::{name}"] = np.asarray(value)
            payload["ema::__updates__"] = np.asarray(ema.updates)
        for key, value in (extra or {}).items():
            payload[f"extra::{key}"] = np.asarray(value)
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        np.savez(path, **payload)

    def load_checkpoint(self, path: str, ema=None) -> dict:
        """Restore a :meth:`save_checkpoint` artifact in place; returns ``extra``.

        Model state is copied *into* the existing parameter arrays (the flat
        buffer views stay bound), the momentum buffer and scheduler position
        are restored, and the learning rate is set so the next
        ``train_step``/``fit`` continues the schedule exactly where the saved
        run left off — resumed trajectories are bitwise identical to
        uninterrupted ones.
        """
        if not path.endswith(".npz"):
            path = path + ".npz"
        archive = np.load(path, allow_pickle=False)
        model_state, opt_state, ema_state, extra = {}, {}, {}, {}
        for key in archive.files:
            prefix, _, name = key.partition("::")
            if prefix == "model":
                model_state[name] = archive[key]
            elif prefix == "opt":
                opt_state[name] = archive[key]
            elif prefix == "ema":
                ema_state[name] = archive[key]
            elif prefix == "extra":
                extra[name] = archive[key]
        self.model.load_state_dict(model_state)
        if opt_state and hasattr(self.optimizer, "load_state_dict"):
            self.optimizer.load_state_dict(opt_state)
        self.scheduler.last_step = int(archive["sched::last_step"])
        after = getattr(self.scheduler, "after", None)
        if after is not None and "sched::after_last_step" in archive.files:
            after.last_step = int(archive["sched::after_last_step"])
        self.global_iteration = int(archive["trainer::global_iteration"])
        if ema is not None and ema_state:
            updates = ema_state.pop("__updates__", None)
            if updates is not None:
                ema.updates = int(updates)
            for name, value in ema_state.items():
                np.copyto(ema.shadow[name], value)
        return extra
