"""Training harness: classification trainer, transfer recipes, detection, metrics."""

from .detection import DetectionTrainer, evaluate_ap50
from .distributed import DistributedTrainer, DistTrainStats
from .metrics import AverageMeter, accuracy, box_iou, mean_ap50, top_k_accuracy
from .trainer import LossComputer, StandardLoss, Trainer, TrainingHistory, evaluate
from .transfer import finetune, reset_classifier

__all__ = [
    "Trainer",
    "DistributedTrainer",
    "DistTrainStats",
    "TrainingHistory",
    "StandardLoss",
    "LossComputer",
    "evaluate",
    "finetune",
    "reset_classifier",
    "DetectionTrainer",
    "evaluate_ap50",
    "accuracy",
    "top_k_accuracy",
    "AverageMeter",
    "box_iou",
    "mean_ap50",
]
