"""Transfer-learning recipes (pretrain on the large corpus, finetune downstream).

The paper's Constraint 2 is about exactly this setting: an ImageNet-pretrained
TNN is finetuned on a small target dataset, and the quality of the pretrained
features bounds the downstream accuracy.  These helpers implement the standard
finetuning recipe used by the Table II / Fig. 1(b) experiments.
"""

from __future__ import annotations

from .. import nn
from ..data.datasets import ClassificationDataset
from ..utils.config import ExperimentConfig
from .trainer import LossComputer, Trainer, TrainingHistory

__all__ = ["reset_classifier", "finetune"]


def reset_classifier(model: nn.Module, num_classes: int) -> None:
    """Replace the classification head for a new label space.

    Uses the model's ``reset_classifier`` method when available (MobileNetV2,
    MCUNet) and falls back to swapping a ``classifier`` Linear attribute.
    """
    if hasattr(model, "reset_classifier"):
        model.reset_classifier(num_classes)
        return
    classifier = getattr(model, "classifier", None)
    if isinstance(classifier, nn.Linear):
        model.classifier = nn.Linear(classifier.in_features, num_classes)
        return
    raise TypeError("model does not expose a replaceable classifier head")


def finetune(
    model: nn.Module,
    train_set: ClassificationDataset,
    val_set: ClassificationDataset,
    config: ExperimentConfig,
    new_num_classes: int | None = None,
    freeze_backbone: bool = False,
    loss_computer: LossComputer | None = None,
    iteration_callbacks: list | None = None,
) -> TrainingHistory:
    """Finetune a pretrained model on a downstream dataset.

    Parameters
    ----------
    new_num_classes:
        When given, the classification head is re-initialised for this many
        classes before training (the usual transfer-learning setup).
    freeze_backbone:
        Train only the classifier head (linear probing).
    loss_computer / iteration_callbacks:
        Forwarded to :class:`~repro.train.trainer.Trainer`, so KD losses and
        PLT schedules compose with finetuning.
    """
    if new_num_classes is not None:
        reset_classifier(model, new_num_classes)
    if freeze_backbone:
        for name, parameter in model.named_parameters():
            parameter.requires_grad = name.startswith("classifier")
    trainer = Trainer(
        model,
        config,
        loss_computer=loss_computer,
        iteration_callbacks=iteration_callbacks,
    )
    return trainer.fit(train_set, val_set)
