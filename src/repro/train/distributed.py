"""Data-parallel distributed training over flat parameter buffers.

:class:`DistributedTrainer` spreads one training run across ``workers``
processes.  Each worker holds its own model replica and compiled
:class:`~repro.runtime.training.TrainStep` (via ``repro.compile(mode=
"train")``), accumulates gradients straight into its
:class:`~repro.optim.FlatParams` gradient buffer, and synchronises through a
:class:`~repro.optim.allreduce.ReductionArena` — a double-buffered
``multiprocessing.shared_memory`` segment with a pipe-based barrier, so one
synchronisation is a handful of whole-buffer vector ops rather than
per-parameter traffic.

Two topologies:

``topology="allreduce"``
    Synchronous data parallelism.  After every backward pass the flat
    gradient buffers are globally mean-reduced (chunked reduce-scatter +
    all-gather), then every worker applies the *same* vectorised
    :class:`~repro.optim.FlatSGD` update — replicas stay bitwise identical
    in lockstep, which the trainer asserts at the end of every fit.

``topology="gossip"``
    DACFL-style decentralised averaging.  Workers take *local* optimiser
    steps and then average their parameter buffers with their left/right
    ring neighbours — no global reduction, no central server.  Replicas
    drift within the consensus band and are ring-averaged into one model at
    the end of the run.

Determinism contract:

* every worker derives the **same epoch plan** from the loader seed and
  yields only its disjoint shard of batch indices (see
  :class:`~repro.data.DataLoader`'s ``shard``), so the union of shards is
  exactly the single-process epoch;
* ``workers=1`` runs the identical code path as :class:`Trainer` (same
  loader stream, same compiled step, same flat-buffer update, no
  collectives) and is **bitwise identical** to it — parameters and
  batch-norm statistics match to the last bit;
* for fixed ``workers=N`` the run is deterministic: reductions sum in
  ascending rank order over the same shards every time.

The ragged tail of an epoch (``num_batches % workers != 0``) keeps the
collectives aligned: workers without a batch in the final round contribute a
zeroed gradient buffer (the mean is scaled by the number of contributors)
and still apply the identical update, so replicas never desynchronise.

Quickstart::

    from repro.train import DistributedTrainer

    trainer = DistributedTrainer(
        lambda: mobilenet_v2("tiny", num_classes=16),
        ExperimentConfig(epochs=4, batch_size=64, lr=0.1),
        workers=4, topology="allreduce",
    )
    history = trainer.fit(train_set, val_set)
    model = trainer.model            # consensus model, parent process
    print(trainer.stats.steps_per_sec)
"""

from __future__ import annotations

import math
import time
import traceback
import zlib
from dataclasses import dataclass
from multiprocessing import get_all_start_methods, get_context, shared_memory
from typing import Callable

import numpy as np

from .. import nn
from ..data.dataloader import DataLoader
from ..optim import FlatSGD
from ..optim.allreduce import PipeBarrier, ReductionArena, arena_nbytes
from ..utils.config import ExperimentConfig
from ..utils.seed import seed_everything
from .metrics import AverageMeter, accuracy
from .trainer import LossComputer, Trainer, TrainingHistory

__all__ = ["DistributedTrainer", "DistTrainStats", "TOPOLOGIES"]

TOPOLOGIES = ("allreduce", "gossip")


# --------------------------------------------------------------------------- #
# gradient/parameter-synchronising optimisers
# --------------------------------------------------------------------------- #
class _AllreduceSGD(FlatSGD):
    """FlatSGD whose ``step`` first mean-reduces the flat gradient buffer.

    The reduction happens *between* gradient accumulation and the vectorised
    update, so every replica applies the identical averaged gradient to
    identical parameters with identical momentum — lockstep by construction.
    ``contributors`` is set per round by the training loop to handle the
    ragged epoch tail (zero-gradient participants don't dilute the mean).
    """

    arena: ReductionArena | None = None
    contributors: int = 1

    def step(self) -> None:
        self.flat.sync_grads()
        self.arena.allreduce(self.flat.grad, contributors=self.contributors)
        super().step()


class _GossipSGD(FlatSGD):
    """FlatSGD that ring-averages *parameters* with its neighbours after each step."""

    arena: ReductionArena | None = None

    def step(self) -> None:
        super().step()
        self.arena.gossip(self.flat.data)


@dataclass
class DistTrainStats:
    """Throughput and consistency figures of the last :meth:`DistributedTrainer.fit`."""

    workers: int
    topology: str
    aggregate_steps: int
    wall_s: float
    steps_per_sec: float
    param_count: int
    arena_bytes: int
    consistent: bool


@dataclass
class _WorkerSpec:
    """Everything a worker process needs to reconstruct its trainer."""

    model_fn: Callable[[], nn.Module]
    config: ExperimentConfig
    workers: int
    topology: str
    loss_computer: LossComputer | None
    train_transform: object | None
    compile: bool | str
    prefetch: bool
    resume_from: str | None
    barrier_timeout_s: float


def _flat_param_count(model: nn.Module) -> int:
    """Size of the flat buffer a ``FlatSGD`` over this model will build."""
    seen: set[int] = set()
    total = 0
    for param in model.parameters():
        if param.requires_grad and id(param) not in seen:
            seen.add(id(param))
            total += param.data.size
    return total


# --------------------------------------------------------------------------- #
# worker process
# --------------------------------------------------------------------------- #
def _worker_main(rank, spec, train_set, val_set, epochs, arena_name, barrier_conns, conn):
    """Entry point of one training worker (module-level for spawn picklability)."""
    shm = arena = None
    try:
        world = spec.workers
        config = spec.config
        # Same seeding a single-process run performs before building its
        # model: replicas initialise bitwise identically on every worker.
        seed_everything(config.seed)
        model = spec.model_fn()
        opt_kwargs = dict(
            lr=config.lr, momentum=config.momentum, weight_decay=config.weight_decay
        )
        if world == 1:
            optimizer = FlatSGD(model.parameters(), **opt_kwargs)
        elif spec.topology == "allreduce":
            optimizer = _AllreduceSGD(model.parameters(), **opt_kwargs)
        else:
            optimizer = _GossipSGD(model.parameters(), **opt_kwargs)
        if world > 1:
            barrier = PipeBarrier(rank, world, barrier_conns, timeout=spec.barrier_timeout_s)
            shm = shared_memory.SharedMemory(name=arena_name)
            arena = ReductionArena(shm, world, optimizer.flat.size, rank, barrier)
            optimizer.arena = arena
        trainer = Trainer(
            model,
            config,
            loss_computer=spec.loss_computer,
            compile=spec.compile,
            optimizer=optimizer,
        )
        if spec.resume_from is not None:
            trainer.load_checkpoint(spec.resume_from)
        loader = DataLoader(
            train_set,
            batch_size=config.batch_size,
            shuffle=True,
            transform=spec.train_transform,
            seed=config.seed,
            prefetch=spec.prefetch,
            shard=(rank, world) if world > 1 else None,
        )
        total_batches = loader.num_global_batches
        rounds = math.ceil(total_batches / world) if total_batches else 0
        steps_done = 0
        for epoch in range(epochs):
            lr = trainer.scheduler.step()
            loss_meter = AverageMeter("loss")
            acc_meter = AverageMeter("accuracy")
            model.train()
            batches = iter(loader)
            for round_index in range(rounds):
                batch_index = round_index * world + rank
                contributors = min(world, total_batches - round_index * world)
                if isinstance(optimizer, _AllreduceSGD):
                    optimizer.contributors = contributors
                if batch_index < total_batches:
                    images, labels = next(batches)
                    loss, logits = trainer.train_step(images, labels)
                    loss_meter.update(loss, n=len(labels))
                    acc_meter.update(accuracy(logits, labels), n=len(labels))
                    steps_done += 1
                else:
                    # Ragged epoch tail: no local batch, but the collective
                    # must stay aligned.  Publish a zeroed gradient and apply
                    # the identical averaged update (allreduce), or keep
                    # participating in the ring average (gossip).
                    optimizer.zero_grad()
                    if isinstance(optimizer, _AllreduceSGD):
                        optimizer.step()
                    else:
                        arena.gossip(optimizer.flat.data)
            val_accuracy = None
            if val_set is not None and rank == 0:
                val_accuracy = trainer.evaluate(val_set)
            conn.send((
                "epoch", rank, epoch, lr,
                loss_meter.average, acc_meter.average, loss_meter.count, val_accuracy,
            ))
        if world > 1 and spec.topology == "gossip":
            # Final consensus: ring-average the drifted replicas into one
            # model (the decentralised analogue of pulling rank 0's weights).
            arena.allreduce(optimizer.flat.data)
        digest = zlib.crc32(optimizer.flat.data.tobytes())
        state = model.state_dict() if rank == 0 else None
        conn.send(("done", rank, digest, steps_done, state))
    except BaseException:
        try:
            conn.send(("error", rank, traceback.format_exc()))
        except Exception:
            pass
        raise SystemExit(1)
    finally:
        if arena is not None:
            arena.close()
        elif shm is not None:
            shm.close()
        conn.close()


# --------------------------------------------------------------------------- #
# parent-side coordinator
# --------------------------------------------------------------------------- #
class DistributedTrainer:
    """Data-parallel trainer: N worker processes over a shared-memory arena.

    Parameters
    ----------
    model_fn:
        Zero-argument model builder.  Every worker seeds the global RNGs with
        ``config.seed`` and calls it, so replicas start bitwise identical.
        Must be picklable under ``start_method="spawn"``; any callable works
        under ``"fork"``.
    config:
        The usual :class:`~repro.utils.ExperimentConfig`; ``batch_size`` is
        the *per-worker* batch size (one synchronised round consumes up to
        ``workers`` batches).
    workers:
        Number of training processes.  ``workers=1`` degenerates to the
        exact :class:`Trainer` code path (no collectives) and is bitwise
        identical to it.
    topology:
        ``"allreduce"`` (synchronous global gradient averaging) or
        ``"gossip"`` (DACFL-style ring neighbour averaging of parameters).
    loss_computer / train_transform / compile / prefetch:
        Forwarded to each worker's :class:`Trainer` / loader.
    start_method:
        ``multiprocessing`` start method; defaults to ``"fork"`` where
        available (no pickling of datasets/models), else ``"spawn"``.
    resume_from:
        Optional :meth:`Trainer.save_checkpoint` artifact every worker loads
        after building its replica — resuming a distributed run keeps the
        replicas in lockstep because the checkpoint fixes parameters,
        momentum and schedule position identically everywhere.
    barrier_timeout_s:
        Collective timeout; a dead or wedged worker surfaces as an error
        instead of a hang.

    Attributes
    ----------
    model:
        After :meth:`fit`: a parent-process model carrying the final
        (consensus) weights and rank 0's batch-norm statistics.
    stats:
        :class:`DistTrainStats` of the last fit.
    """

    def __init__(
        self,
        model_fn: Callable[[], nn.Module],
        config: ExperimentConfig,
        workers: int = 2,
        topology: str = "allreduce",
        loss_computer: LossComputer | None = None,
        train_transform=None,
        compile: bool | str = True,
        prefetch: bool = True,
        start_method: str | None = None,
        resume_from: str | None = None,
        barrier_timeout_s: float = 120.0,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if topology not in TOPOLOGIES:
            raise ValueError(f"topology must be one of {TOPOLOGIES}, got {topology!r}")
        if start_method not in (None, "fork", "spawn", "forkserver"):
            raise ValueError(f"unknown start method {start_method!r}")
        self.model_fn = model_fn
        self.config = config
        self.workers = workers
        self.topology = topology
        self.spec = _WorkerSpec(
            model_fn=model_fn,
            config=config,
            workers=workers,
            topology=topology,
            loss_computer=loss_computer,
            train_transform=train_transform,
            compile=compile,
            prefetch=prefetch,
            resume_from=resume_from,
            barrier_timeout_s=barrier_timeout_s,
        )
        self.start_method = start_method or (
            "fork" if "fork" in get_all_start_methods() else "spawn"
        )
        self.model: nn.Module | None = None
        self.stats: DistTrainStats | None = None

    def fit(self, train_set, val_set=None, epochs: int | None = None) -> TrainingHistory:
        """Train for ``epochs`` across the worker fleet; returns global history.

        The returned history's train loss/accuracy are the sample-weighted
        combination of every worker's shard (i.e. the loss curve of the full
        epoch, exactly comparable to a single-process run); validation
        accuracy is evaluated by rank 0 each epoch.
        """
        epochs = epochs if epochs is not None else self.config.epochs
        world = self.workers
        # Parent-side replica: sizes the arena and receives the final weights.
        seed_everything(self.config.seed)
        model = self.model_fn()
        param_count = _flat_param_count(model)
        if param_count == 0:
            raise ValueError("model has no trainable parameters")
        ctx = get_context(self.start_method)
        shm = None
        procs: list = []
        parent_conns: dict[int, object] = {}
        barrier_ends: list = []
        try:
            if world > 1:
                shm = shared_memory.SharedMemory(
                    create=True, size=arena_nbytes(world, param_count)
                )
            rank0_conns = []
            peer_conns: dict[int, object] = {}
            for peer in range(1, world):
                coordinator_end, peer_end = ctx.Pipe()
                rank0_conns.append(coordinator_end)
                peer_conns[peer] = peer_end
                barrier_ends.extend((coordinator_end, peer_end))
            child_conns = {}
            for rank in range(world):
                parent_end, child_end = ctx.Pipe(duplex=False)
                parent_conns[rank] = parent_end
                child_conns[rank] = child_end
            start = time.perf_counter()
            for rank in range(world):
                proc = ctx.Process(
                    target=_worker_main,
                    name=f"repro-train-dp-{rank}",
                    args=(
                        rank,
                        self.spec,
                        train_set,
                        val_set,
                        epochs,
                        shm.name if shm is not None else None,
                        rank0_conns if rank == 0 else peer_conns.get(rank),
                        child_conns[rank],
                    ),
                )
                proc.start()
                procs.append(proc)
            for child_end in child_conns.values():
                child_end.close()
            per_epoch, done = self._collect(parent_conns, procs, world)
            wall = time.perf_counter() - start
            history = self._assemble_history(per_epoch, epochs, world)
            digests = {rank: digest for rank, (digest, _, _) in done.items()}
            consistent = len(set(digests.values())) == 1
            if self.topology == "allreduce" and not consistent:
                raise RuntimeError(
                    f"allreduce replicas diverged: param digests {digests} — "
                    "the lockstep invariant is broken"
                )
            state = done[0][2]
            model.load_state_dict(state)
            self.model = model
            aggregate_steps = sum(steps for _, steps, _ in done.values())
            self.stats = DistTrainStats(
                workers=world,
                topology=self.topology,
                aggregate_steps=aggregate_steps,
                wall_s=wall,
                steps_per_sec=aggregate_steps / wall if wall > 0 else 0.0,
                param_count=param_count,
                arena_bytes=arena_nbytes(world, param_count) if world > 1 else 0,
                consistent=consistent,
            )
            return history
        finally:
            for proc in procs:
                proc.join(timeout=10.0)
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=10.0)
            for conn in list(parent_conns.values()) + barrier_ends:
                try:
                    conn.close()
                except OSError:
                    pass
            if shm is not None:
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass

    # ------------------------------------------------------------------ #
    # message plumbing
    # ------------------------------------------------------------------ #
    def _collect(self, parent_conns, procs, world):
        """Drain worker messages until every rank reports done (or dies)."""
        per_epoch: dict[int, dict[int, tuple]] = {}
        done: dict[int, tuple] = {}
        pending = set(range(world))
        while pending:
            progressed = False
            for rank in sorted(pending):
                conn = parent_conns[rank]
                try:
                    ready = conn.poll(0.02)
                except OSError:
                    ready = False
                if not ready:
                    continue
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    raise RuntimeError(f"training worker {rank} died mid-run") from None
                progressed = True
                kind = message[0]
                if kind == "epoch":
                    _, sender, epoch, lr, loss, acc, count, val = message
                    per_epoch.setdefault(epoch, {})[sender] = (lr, loss, acc, count, val)
                elif kind == "done":
                    _, sender, digest, steps, state = message
                    done[sender] = (digest, steps, state)
                    pending.discard(sender)
                else:  # "error"
                    _, sender, trace = message
                    raise RuntimeError(
                        f"training worker {sender} failed:\n{trace}"
                    )
            if not progressed:
                for rank, proc in enumerate(procs):
                    if rank in pending and not proc.is_alive():
                        raise RuntimeError(
                            f"training worker {rank} exited with code "
                            f"{proc.exitcode} before reporting a result"
                        )
        return per_epoch, done

    def _assemble_history(self, per_epoch, epochs, world) -> TrainingHistory:
        history = TrainingHistory()
        for epoch in range(epochs):
            entries = per_epoch.get(epoch, {})
            if len(entries) != world:
                raise RuntimeError(
                    f"epoch {epoch}: expected {world} worker reports, got {len(entries)}"
                )
            total = sum(count for _, _, _, count, _ in entries.values())
            if total:
                history.train_loss.append(
                    sum(loss * count for _, loss, _, count, _ in entries.values()) / total
                )
                history.train_accuracy.append(
                    sum(acc * count for _, _, acc, count, _ in entries.values()) / total
                )
            else:
                history.train_loss.append(float("nan"))
                history.train_accuracy.append(float("nan"))
            history.learning_rate.append(entries[0][0])
            val = entries[0][4]
            if val is not None:
                history.val_accuracy.append(val)
        return history
