"""Detection training and AP50 evaluation (the paper's Pascal VOC experiment)."""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.detection import DetectionDataset
from ..models.detector import DetectionLoss, TinyDetector, build_targets, decode_predictions
from ..optim import SGD, CosineAnnealingLR
from ..utils.config import ExperimentConfig
from .metrics import AverageMeter, mean_ap50

__all__ = ["DetectionTrainer", "evaluate_ap50"]


def _batch_targets(
    dataset: DetectionDataset, indices: np.ndarray, grid: int, num_classes: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Stack images and per-cell targets for a batch of dataset indices."""
    images, objectness, boxes, classes = [], [], [], []
    for index in indices:
        sample = dataset[int(index)]
        obj, box, cls, _ = build_targets(
            sample.boxes, sample.labels, grid, dataset.resolution, num_classes
        )
        images.append(sample.image)
        objectness.append(obj)
        boxes.append(box)
        classes.append(cls)
    return (
        np.stack(images).astype(np.float32),
        np.stack(objectness),
        np.stack(boxes),
        np.stack(classes),
    )


def evaluate_ap50(model: TinyDetector, dataset: DetectionDataset, score_threshold: float = 0.3) -> float:
    """AP at IoU 0.5 (percent) of a detector on a detection dataset."""
    was_training = model.training
    model.eval()
    detections = []
    ground_truths = []
    with nn.no_grad():
        for start in range(0, len(dataset), 16):
            indices = np.arange(start, min(start + 16, len(dataset)))
            images = np.stack([dataset[int(i)].image for i in indices])
            predictions = model(nn.Tensor(images)).numpy()
            detections.extend(
                decode_predictions(predictions, dataset.resolution, score_threshold=score_threshold)
            )
            for i in indices:
                sample = dataset[int(i)]
                ground_truths.append({"boxes": sample.boxes, "labels": sample.labels})
    model.train(was_training)
    return mean_ap50(detections, ground_truths, dataset.num_classes)


class DetectionTrainer:
    """SGD training loop for :class:`~repro.models.detector.TinyDetector`.

    The backbone is typically pretrained on the classification corpus (either
    vanilla or via NetBooster); the detection head is trained from scratch.
    """

    def __init__(
        self,
        model: TinyDetector,
        config: ExperimentConfig,
        loss: DetectionLoss | None = None,
        iteration_callbacks: list | None = None,
    ):
        self.model = model
        self.config = config
        self.loss = loss or DetectionLoss()
        self.iteration_callbacks = list(iteration_callbacks or [])
        self.optimizer = SGD(
            model.parameters(),
            lr=config.lr,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
        self.scheduler = CosineAnnealingLR(self.optimizer, total_steps=config.epochs, min_lr=config.min_lr)
        self.global_iteration = 0

    def fit(self, train_set: DetectionDataset, val_set: DetectionDataset | None = None) -> dict:
        """Train for the configured number of epochs; returns loss/AP history."""
        rng = np.random.default_rng(self.config.seed)
        grid = self.model.grid_size(train_set.resolution)
        history = {"train_loss": [], "val_ap50": []}
        for _ in range(self.config.epochs):
            self.scheduler.step()
            loss_meter = AverageMeter("loss")
            order = rng.permutation(len(train_set))
            self.model.train()
            for start in range(0, len(order), self.config.batch_size):
                indices = order[start : start + self.config.batch_size]
                images, objectness, boxes, classes = _batch_targets(
                    train_set, indices, grid, train_set.num_classes
                )
                self.optimizer.zero_grad()
                predictions = self.model(nn.Tensor(images))
                loss = self.loss(predictions, objectness, boxes, classes)
                loss.backward()
                self.optimizer.step()
                self.global_iteration += 1
                for callback in self.iteration_callbacks:
                    callback(self.global_iteration)
                loss_meter.update(loss.item(), n=len(indices))
            history["train_loss"].append(loss_meter.average)
            if val_set is not None:
                history["val_ap50"].append(evaluate_ap50(self.model, val_set))
        return history
