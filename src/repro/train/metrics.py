"""Evaluation metrics: classification accuracy and detection AP50."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "top_k_accuracy", "AverageMeter", "box_iou", "average_precision", "mean_ap50"]


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy in percent."""
    predictions = np.asarray(logits).argmax(axis=-1)
    return float((predictions == np.asarray(labels)).mean() * 100.0)


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Top-k accuracy in percent."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    k = min(k, logits.shape[-1])
    top_k = np.argsort(-logits, axis=-1)[:, :k]
    hits = (top_k == labels[:, None]).any(axis=1)
    return float(hits.mean() * 100.0)


class AverageMeter:
    """Tracks a running average of a scalar (loss, accuracy, ...)."""

    def __init__(self, name: str = "metric"):
        self.name = name
        self.reset()

    def reset(self) -> None:
        self.sum = 0.0
        self.count = 0

    def update(self, value: float, n: int = 1) -> None:
        self.sum += float(value) * n
        self.count += n

    @property
    def average(self) -> float:
        return self.sum / max(self.count, 1)

    def __repr__(self) -> str:
        return f"{self.name}={self.average:.4f}"


def box_iou(boxes_a: np.ndarray, boxes_b: np.ndarray) -> np.ndarray:
    """Pairwise IoU between two sets of ``(x0, y0, x1, y1)`` boxes.

    Returns an ``(len(a), len(b))`` matrix.
    """
    boxes_a = np.asarray(boxes_a, dtype=np.float64).reshape(-1, 4)
    boxes_b = np.asarray(boxes_b, dtype=np.float64).reshape(-1, 4)
    if len(boxes_a) == 0 or len(boxes_b) == 0:
        return np.zeros((len(boxes_a), len(boxes_b)))

    x0 = np.maximum(boxes_a[:, None, 0], boxes_b[None, :, 0])
    y0 = np.maximum(boxes_a[:, None, 1], boxes_b[None, :, 1])
    x1 = np.minimum(boxes_a[:, None, 2], boxes_b[None, :, 2])
    y1 = np.minimum(boxes_a[:, None, 3], boxes_b[None, :, 3])
    intersection = np.clip(x1 - x0, 0, None) * np.clip(y1 - y0, 0, None)

    area_a = (boxes_a[:, 2] - boxes_a[:, 0]) * (boxes_a[:, 3] - boxes_a[:, 1])
    area_b = (boxes_b[:, 2] - boxes_b[:, 0]) * (boxes_b[:, 3] - boxes_b[:, 1])
    union = area_a[:, None] + area_b[None, :] - intersection
    return intersection / np.maximum(union, 1e-9)


def average_precision(recalls: np.ndarray, precisions: np.ndarray) -> float:
    """All-point interpolated average precision (VOC2010-style)."""
    recalls = np.concatenate([[0.0], recalls, [1.0]])
    precisions = np.concatenate([[0.0], precisions, [0.0]])
    for i in range(len(precisions) - 1, 0, -1):
        precisions[i - 1] = max(precisions[i - 1], precisions[i])
    changes = np.where(recalls[1:] != recalls[:-1])[0]
    return float(np.sum((recalls[changes + 1] - recalls[changes]) * precisions[changes + 1]))


def mean_ap50(
    detections: list[dict[str, np.ndarray]],
    ground_truths: list[dict[str, np.ndarray]],
    num_classes: int,
    iou_threshold: float = 0.5,
) -> float:
    """Mean average precision at IoU 0.5 (the paper's AP50 metric), in percent.

    Parameters
    ----------
    detections:
        Per image: dict with ``boxes`` (K, 4), ``scores`` (K,), ``labels`` (K,).
    ground_truths:
        Per image: dict with ``boxes`` (M, 4), ``labels`` (M,).
    """
    aps = []
    for cls in range(num_classes):
        records = []  # (score, is_true_positive)
        total_gt = 0
        for det, gt in zip(detections, ground_truths):
            gt_mask = np.asarray(gt["labels"]) == cls
            gt_boxes = np.asarray(gt["boxes"]).reshape(-1, 4)[gt_mask]
            total_gt += len(gt_boxes)
            matched = np.zeros(len(gt_boxes), dtype=bool)

            det_mask = np.asarray(det["labels"]) == cls
            det_boxes = np.asarray(det["boxes"]).reshape(-1, 4)[det_mask]
            det_scores = np.asarray(det["scores"])[det_mask]
            order = np.argsort(-det_scores)
            for index in order:
                if len(gt_boxes) == 0:
                    records.append((det_scores[index], False))
                    continue
                ious = box_iou(det_boxes[index : index + 1], gt_boxes)[0]
                best = int(ious.argmax())
                if ious[best] >= iou_threshold and not matched[best]:
                    matched[best] = True
                    records.append((det_scores[index], True))
                else:
                    records.append((det_scores[index], False))
        if total_gt == 0:
            continue
        if not records:
            aps.append(0.0)
            continue
        records.sort(key=lambda item: -item[0])
        tp = np.cumsum([1.0 if flag else 0.0 for _, flag in records])
        fp = np.cumsum([0.0 if flag else 1.0 for _, flag in records])
        recalls = tp / total_gt
        precisions = tp / np.maximum(tp + fp, 1e-9)
        aps.append(average_precision(recalls, precisions))
    return float(np.mean(aps) * 100.0) if aps else 0.0
