"""NetBooster (DAC 2023) reproduction on a pure-NumPy deep learning substrate.

The package-level compilation frontend is the one entry point into every
compiled runtime engine::

    import repro

    net  = repro.compile(model)                  # fused float inference
    qnet = repro.compile(model, mode="int8")     # true-integer engine
    step = repro.compile(model, mode="train", loss=loss, optimizer=opt)

See :mod:`repro.runtime` for the graph IR, the pass pipelines and the
executors' uniform ``numpy_forward`` / ``memory_plan`` / ``describe`` surface.
"""

__version__ = "0.1.0"

__all__ = ["compile", "CompileOptions", "CompileError", "__version__"]

_FRONTEND_EXPORTS = {
    "compile": "compile_model",
    "CompileOptions": "CompileOptions",
    "CompileError": "CompileError",
}


def __getattr__(name: str):
    # Lazy so that `import repro` stays light: the runtime (and NumPy-heavy
    # substrate) only loads when the compilation frontend is first touched.
    if name in _FRONTEND_EXPORTS:
        from .runtime import frontend

        return getattr(frontend, _FRONTEND_EXPORTS[name])
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
