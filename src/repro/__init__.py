"""NetBooster (DAC 2023) reproduction on a pure-NumPy deep learning substrate."""

__version__ = "0.1.0"
