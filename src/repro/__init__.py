"""NetBooster (DAC 2023) reproduction on a pure-NumPy deep learning substrate.

The package-level compilation frontend is the one entry point into every
compiled runtime engine::

    import repro

    net  = repro.compile(model)                  # fused float inference
    qnet = repro.compile(model, mode="int8")     # true-integer engine
    step = repro.compile(model, mode="train", loss=loss, optimizer=opt)

Compiled executors serialize to single-file versioned artifacts and load back
bit-identical in a fresh process — no calibration data needed at boot::

    qnet.save("model.rpa", input_shape=(3, 32, 32))
    qnet2 = repro.load("model.rpa")              # ArtifactError on any skew

See :mod:`repro.runtime` for the graph IR, the pass pipelines and the
executors' uniform ``numpy_forward`` / ``memory_plan`` / ``describe`` surface,
and :mod:`repro.runtime.artifact` for the artifact format and its fingerprint
contract.
"""

__version__ = "0.1.0"

__all__ = ["compile", "load", "CompileOptions", "CompileError", "ArtifactError", "__version__"]

_FRONTEND_EXPORTS = {
    "compile": "compile_model",
    "CompileOptions": "CompileOptions",
    "CompileError": "CompileError",
}

_ARTIFACT_EXPORTS = {
    "load": "load_artifact",
    "ArtifactError": "ArtifactError",
}


def __getattr__(name: str):
    # Lazy so that `import repro` stays light: the runtime (and NumPy-heavy
    # substrate) only loads when the compilation frontend is first touched.
    if name in _FRONTEND_EXPORTS:
        from .runtime import frontend

        return getattr(frontend, _FRONTEND_EXPORTS[name])
    if name in _ARTIFACT_EXPORTS:
        from .runtime import artifact

        return getattr(artifact, _ARTIFACT_EXPORTS[name])
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
