"""Tests for data-parallel training: barrier, reduction arena, DistributedTrainer."""

import multiprocessing
import threading
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro import nn
from repro.data import ClassificationDataset
from repro.optim import PipeBarrier, ReductionArena, arena_nbytes
from repro.train import DistributedTrainer, Trainer
from repro.utils import ExperimentConfig
from repro.utils.seed import seed_everything


def _toy_dataset(n=40, classes=4, size=12, seed=0):
    rng = np.random.default_rng(seed)
    labels = np.arange(n) % classes
    images = rng.normal(0.3, 0.05, size=(n, 3, size, size)).astype(np.float32)
    for i, label in enumerate(labels):
        images[i, 0] += 0.5 * label
    return ClassificationDataset(images, labels, classes)


class SmallNet(nn.Module):
    """Conv + BatchNorm + linear head: exercises running statistics too."""

    def __init__(self, classes=4):
        super().__init__()
        self.features = nn.Sequential(
            nn.Conv2d(3, 8, 3, stride=2, padding=1), nn.BatchNorm2d(8), nn.ReLU()
        )
        self.pool = nn.GlobalAvgPool2d()
        self.flatten = nn.Flatten()
        self.classifier = nn.Linear(8, classes)

    def forward(self, x):
        return self.classifier(self.flatten(self.pool(self.features(x))))


def _run_world(world, fn):
    """Drive a world of `fn(rank, barrier_conns)` participants on threads.

    The barrier/arena protocols are process-agnostic (pipes + shared memory),
    so threads give the unit tests real concurrency without fork overhead.
    """
    rank0_conns, peer_conns = [], {}
    for peer in range(1, world):
        a, b = multiprocessing.Pipe()
        rank0_conns.append(a)
        peer_conns[peer] = b
    results: dict[int, object] = {}
    errors: list[BaseException] = []

    def runner(rank):
        try:
            conns = rank0_conns if rank == 0 else peer_conns[rank]
            results[rank] = fn(rank, conns)
        except BaseException as exc:  # surfaced to the test below
            errors.append(exc)

    threads = [threading.Thread(target=runner, args=(rank,)) for rank in range(world)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    for conn in rank0_conns + list(peer_conns.values()):
        conn.close()
    if errors:
        raise errors[0]
    return results


class TestPipeBarrier:
    def test_world_of_one_is_noop(self):
        barrier = PipeBarrier(0, 1)
        for _ in range(3):
            barrier.wait()

    def test_rendezvous_and_sequence(self):
        def participant(rank, conns):
            barrier = PipeBarrier(rank, 3, conns, timeout=10)
            for _ in range(5):
                barrier.wait()
            return barrier._seq

        results = _run_world(3, participant)
        assert set(results.values()) == {5}

    def test_dead_peer_times_out(self):
        a, b = multiprocessing.Pipe()
        barrier = PipeBarrier(1, 2, b, timeout=0.2)
        with pytest.raises(RuntimeError, match="timed out"):
            barrier.wait()
        a.close(), b.close()

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            PipeBarrier(2, 2)

    def test_rank0_needs_all_connections(self):
        with pytest.raises(ValueError):
            PipeBarrier(0, 3, conns=[])


class TestReductionArena:
    def _with_arena(self, world, size, fn):
        shm = shared_memory.SharedMemory(create=True, size=arena_nbytes(world, size))
        try:
            def participant(rank, conns):
                barrier = PipeBarrier(rank, world, conns, timeout=10)
                local = shared_memory.SharedMemory(name=shm.name)
                arena = ReductionArena(local, world, size, rank, barrier)
                try:
                    return fn(rank, arena)
                finally:
                    arena.close()

            return _run_world(world, participant)
        finally:
            shm.close()
            shm.unlink()

    def test_allreduce_is_global_mean(self):
        size = 10

        def participant(rank, arena):
            buf = np.full(size, float(rank + 1), dtype=np.float32)
            arena.allreduce(buf)
            return buf.copy()

        results = self._with_arena(3, size, participant)
        for buf in results.values():
            np.testing.assert_allclose(buf, 2.0)  # mean of 1, 2, 3

    def test_allreduce_contributors_scales_partial_rounds(self):
        """Ragged tail: a zero buffer participates but does not dilute the mean."""
        size = 6

        def participant(rank, arena):
            value = 4.0 if rank == 0 else 0.0
            buf = np.full(size, value, dtype=np.float32)
            arena.allreduce(buf, contributors=1)
            return buf.copy()

        results = self._with_arena(2, size, participant)
        for buf in results.values():
            np.testing.assert_allclose(buf, 4.0)

    def test_allreduce_deterministic_across_rounds(self):
        size = 1000
        rng = np.random.default_rng(3)
        data = rng.normal(size=(3, size)).astype(np.float32)

        def participant(rank, arena):
            first = data[rank].copy()
            arena.allreduce(first)
            second = data[rank].copy()
            arena.allreduce(second)
            return first, second

        results = self._with_arena(3, size, participant)
        # Both rounds reduce the same inputs -> bitwise identical outputs, on
        # every rank (double banking kept the rounds from clobbering each other).
        reference = results[0][0]
        for first, second in results.values():
            np.testing.assert_array_equal(first, reference)
            np.testing.assert_array_equal(second, reference)

    def test_gossip_averages_ring_neighbourhood(self):
        size = 4

        def participant(rank, arena):
            buf = np.full(size, float(rank), dtype=np.float32)
            arena.gossip(buf)
            return buf.copy()

        results = self._with_arena(4, size, participant)
        # Ring of 4: rank r averages {r-1, r, r+1} mod 4.
        for rank, buf in results.items():
            members = sorted({(rank - 1) % 4, rank, (rank + 1) % 4})
            np.testing.assert_allclose(buf, np.mean(members), rtol=1e-6)

    def test_world_of_one_collectives_are_noops(self):
        shm = shared_memory.SharedMemory(create=True, size=arena_nbytes(1, 4))
        try:
            arena = ReductionArena(shm, 1, 4, 0, PipeBarrier(0, 1))
            buf = np.arange(4, dtype=np.float32)
            arena.allreduce(buf)
            arena.gossip(buf)
            np.testing.assert_array_equal(buf, np.arange(4, dtype=np.float32))
            arena.close()
        finally:
            shm.close()
            shm.unlink()

    def test_contributors_validation(self):
        shm = shared_memory.SharedMemory(create=True, size=arena_nbytes(2, 4))
        try:
            arena = ReductionArena(shm, 2, 4, 0, PipeBarrier(0, 1))
            with pytest.raises(ValueError):
                arena.allreduce(np.zeros(4, dtype=np.float32), contributors=3)
        finally:
            shm.close()
            shm.unlink()

    def test_arena_nbytes_layout(self):
        # Two banks of (world slots + 1 reduced row) of float32.
        assert arena_nbytes(4, 100) == 2 * 5 * 100 * 4


class TestDistributedTrainer:
    def _config(self, epochs=2, **kw):
        kw.setdefault("warmup_epochs", 0)
        return ExperimentConfig(epochs=epochs, batch_size=8, lr=0.1, **kw)

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            DistributedTrainer(SmallNet, self._config(), workers=0)
        with pytest.raises(ValueError):
            DistributedTrainer(SmallNet, self._config(), topology="tree")
        with pytest.raises(ValueError):
            DistributedTrainer(SmallNet, self._config(), start_method="thread")

    def test_single_worker_bitwise_identical_to_trainer(self):
        """workers=1 runs the exact Trainer code path: after 50 optimiser
        steps, parameters AND batch-norm running statistics match bitwise."""
        train_set = _toy_dataset()
        config = self._config(epochs=10)  # 5 batches/epoch x 10 epochs = 50 steps
        seed_everything(config.seed)
        reference_model = SmallNet()
        reference = Trainer(reference_model, config, compile=False)
        ref_history = reference.fit(train_set)

        distributed = DistributedTrainer(SmallNet, config, workers=1, compile=False)
        dist_history = distributed.fit(train_set)

        ref_state = reference_model.state_dict()
        dist_state = distributed.model.state_dict()
        assert ref_state.keys() == dist_state.keys()
        for name in ref_state:  # includes BN running_mean/running_var
            np.testing.assert_array_equal(ref_state[name], dist_state[name], err_msg=name)
        assert ref_history.train_loss == dist_history.train_loss
        assert ref_history.train_accuracy == dist_history.train_accuracy
        assert distributed.stats.aggregate_steps == 50

    def test_allreduce_replicas_stay_in_lockstep(self):
        distributed = DistributedTrainer(
            SmallNet, self._config(), workers=2, topology="allreduce", compile=False
        )
        history = distributed.fit(_toy_dataset())
        assert distributed.stats.consistent  # crc32 digests equal across ranks
        assert distributed.stats.workers == 2
        assert len(history.train_loss) == 2
        assert all(np.isfinite(loss) for loss in history.train_loss)

    def test_allreduce_run_is_deterministic(self):
        def run():
            trainer = DistributedTrainer(
                SmallNet, self._config(), workers=2, topology="allreduce", compile=False
            )
            history = trainer.fit(_toy_dataset())
            return trainer.model.state_dict(), history.train_loss

        state_a, loss_a = run()
        state_b, loss_b = run()
        assert loss_a == loss_b
        for name in state_a:
            np.testing.assert_array_equal(state_a[name], state_b[name], err_msg=name)

    def test_gossip_topology_reaches_consensus(self):
        distributed = DistributedTrainer(
            SmallNet, self._config(), workers=2, topology="gossip", compile=False
        )
        history = distributed.fit(_toy_dataset())
        # The final consensus allreduce equalises the replicas exactly.
        assert distributed.stats.consistent
        assert distributed.stats.topology == "gossip"
        assert all(np.isfinite(loss) for loss in history.train_loss)

    def test_ragged_tail_keeps_replicas_aligned(self):
        # 40 samples / batch 8 = 5 global batches over 3 workers: the final
        # round has only 2 contributors, the third publishes a zero gradient.
        distributed = DistributedTrainer(
            SmallNet, self._config(), workers=3, topology="allreduce", compile=False
        )
        distributed.fit(_toy_dataset())
        assert distributed.stats.consistent
        assert distributed.stats.aggregate_steps == 10  # 5 batches x 2 epochs

    def test_compiled_and_eager_distributed_match(self):
        """The compiled train step is bit-identical to the eager tape, so the
        whole distributed run is too."""
        def run(compile_mode):
            trainer = DistributedTrainer(
                SmallNet, self._config(), workers=2, compile=compile_mode
            )
            trainer.fit(_toy_dataset())
            return trainer.model.state_dict()

        eager, compiled = run(False), run(True)
        for name in eager:
            np.testing.assert_array_equal(eager[name], compiled[name], err_msg=name)

    def test_resume_from_checkpoint_keeps_lockstep(self, tmp_path):
        train_set = _toy_dataset()
        config = self._config(epochs=2)
        warm = DistributedTrainer(SmallNet, config, workers=2, compile=False)
        warm.fit(train_set)
        ckpt = str(tmp_path / "warm")
        seed_everything(config.seed)
        holder = Trainer(SmallNet(), config, compile=False)
        holder.model.load_state_dict(warm.model.state_dict())
        holder.save_checkpoint(ckpt)

        resumed = DistributedTrainer(
            SmallNet, config, workers=2, compile=False, resume_from=ckpt
        )
        resumed.fit(train_set, epochs=1)
        assert resumed.stats.consistent

    def test_worker_error_propagates(self):
        class Broken(nn.Module):
            def __init__(self):
                super().__init__()
                self.classifier = nn.Linear(8, 4)

            def forward(self, x):
                raise RuntimeError("kaboom in the worker")

        distributed = DistributedTrainer(Broken, self._config(epochs=1), workers=2, compile=False)
        with pytest.raises(RuntimeError):
            distributed.fit(_toy_dataset())

    def test_stats_populated(self):
        distributed = DistributedTrainer(SmallNet, self._config(), workers=2, compile=False)
        distributed.fit(_toy_dataset())
        stats = distributed.stats
        assert stats.param_count > 0
        assert stats.arena_bytes == arena_nbytes(2, stats.param_count)
        assert stats.wall_s > 0
        assert stats.steps_per_sec > 0
