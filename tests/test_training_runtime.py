"""Parity and behaviour tests for the compiled training engine.

Covers the fused training runtime (`repro.runtime.compile_training_step`),
the flat-buffer optimisers (`repro.optim.flat`), flat EMA / clipping, and the
prefetching data pipeline's RNG stability.
"""

import numpy as np
import pytest

from repro import nn
from repro.data import (
    ClassificationDataset,
    Compose,
    DataLoader,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
)
from repro.models import mcunet, mobilenet_v2
from repro.optim import (
    SGD,
    FlatParams,
    FlatSGD,
    ModelEMA,
    clip_grad_norm,
    clip_grad_norm_,
)
from repro.runtime import compile_training_step
from repro.train import Trainer
from repro.utils import ExperimentConfig, seed_everything


def _dataset(n=64, classes=4, size=16, seed=0):
    rng = np.random.default_rng(seed)
    labels = np.arange(n) % classes
    images = rng.normal(0.4, 0.2, size=(n, 3, size, size)).astype(np.float32)
    for i, label in enumerate(labels):
        images[i, 0] += 0.3 * label
    return ClassificationDataset(images, np.asarray(labels), classes)


def _run_steps(factory, compile_flag, steps=50, batch=8, classes=4, label_smoothing=0.1):
    """Train `steps` iterations; return per-step losses and the final state."""
    seed_everything(0)
    model = factory()
    trainer = Trainer(
        model,
        ExperimentConfig(batch_size=batch, lr=0.05, label_smoothing=label_smoothing),
        compile=compile_flag,
    )
    rng = np.random.default_rng(7)
    losses = []
    model.train()
    for _ in range(steps):
        images = rng.normal(size=(batch, 3, 16, 16)).astype(np.float32)
        labels = rng.integers(0, classes, size=batch)
        loss, _ = trainer.train_step(images, labels)
        losses.append(loss)
    return losses, model.state_dict(), trainer


class TestCompiledTrainStepParity:
    @pytest.mark.parametrize(
        "name,factory",
        [
            ("mobilenetv2-tiny", lambda: mobilenet_v2("tiny", num_classes=4)),
            ("mcunet", lambda: mcunet(num_classes=4)),
        ],
    )
    def test_parity_over_50_steps(self, name, factory):
        """Compiled and eager train steps agree on loss, params and BN stats."""
        eager_losses, eager_state, _ = _run_steps(factory, compile_flag=False)
        compiled_losses, compiled_state, trainer = _run_steps(factory, compile_flag=True)
        assert trainer._compiled_step is not None, "compiled path was not used"
        np.testing.assert_allclose(compiled_losses, eager_losses, atol=1e-6)
        for key in eager_state:
            np.testing.assert_allclose(
                compiled_state[key], eager_state[key], atol=1e-6,
                err_msg=f"state mismatch at {key} ({name})",
            )

    def test_bn_running_stats_updated_in_train_mode(self):
        seed_everything(0)
        model = mobilenet_v2("tiny", num_classes=4)
        before = {
            name: value.copy()
            for name, value in model.state_dict().items()
            if "running_" in name
        }
        trainer = Trainer(model, ExperimentConfig(batch_size=8, lr=0.01), compile=True)
        rng = np.random.default_rng(0)
        trainer.train_step(
            rng.normal(size=(8, 3, 16, 16)).astype(np.float32), rng.integers(0, 4, size=8)
        )
        assert trainer._compiled_step is not None
        after = model.state_dict()
        changed = [name for name in before if not np.allclose(after[name], before[name])]
        assert changed, "compiled step must update BN running statistics"

    def test_grads_land_in_flat_buffer(self):
        seed_everything(0)
        model = mobilenet_v2("tiny", num_classes=4)
        trainer = Trainer(model, ExperimentConfig(batch_size=4, lr=0.01), compile=True)
        step = trainer._ensure_compiled()
        assert step is not None
        trainer.optimizer.zero_grad()
        rng = np.random.default_rng(0)
        step(rng.normal(size=(4, 3, 16, 16)).astype(np.float32), rng.integers(0, 4, size=4))
        flat_grad = trainer.optimizer.flat.grad
        assert float(np.abs(flat_grad).sum()) > 0.0
        for param in trainer.optimizer.params:
            assert param.grad is not None
            assert param.grad.base is flat_grad or param.grad is flat_grad

    def test_structural_change_triggers_recompile(self):
        seed_everything(0)
        model = mobilenet_v2("tiny", num_classes=4)
        trainer = Trainer(model, ExperimentConfig(batch_size=4, lr=0.01), compile=True)
        first = trainer._ensure_compiled()
        assert first is not None and first.matches(model)
        model.reset_classifier(3)  # swaps the classifier module
        assert not first.matches(model)
        second = trainer._ensure_compiled()
        assert second is not None and second is not first

    def test_unsupported_loss_falls_back_to_eager(self):
        class CustomLoss:
            def __call__(self, model, images, labels):
                from repro.nn import functional as F

                logits = model(images)
                return F.cross_entropy(logits, labels), logits

        seed_everything(0)
        model = mobilenet_v2("tiny", num_classes=4)
        trainer = Trainer(
            model, ExperimentConfig(batch_size=4, lr=0.01), loss_computer=CustomLoss()
        )
        rng = np.random.default_rng(0)
        loss, logits = trainer.train_step(
            rng.normal(size=(4, 3, 16, 16)).astype(np.float32), rng.integers(0, 4, size=4)
        )
        assert trainer._compiled_step is None
        assert np.isfinite(loss) and logits.shape == (4, 4)

    def test_decayable_alpha_read_live(self):
        """PLT-style alpha mutation must be visible without recompilation."""
        act = nn.DecayableReLU(alpha=0.0)
        model = nn.Sequential(
            nn.Conv2d(3, 4, 3, padding=1, bias=True), act, nn.GlobalAvgPool2d(), nn.Flatten(),
            nn.Linear(4, 2),
        )
        step = compile_training_step(model)
        assert step is not None
        x = np.full((2, 3, 4, 4), -1.0, dtype=np.float32)
        labels = np.zeros(2, dtype=np.int64)
        model.zero_grad()
        _, logits_relu = step(x, labels)
        act.set_alpha(1.0)  # identity now
        model.zero_grad()
        _, logits_linear = step(x, labels)
        assert not np.allclose(logits_relu, logits_linear)


class TestFlatOptim:
    def _model(self):
        seed_everything(3)
        return mobilenet_v2("tiny", num_classes=4)

    def test_flat_sgd_matches_sgd_bitwise(self):
        def train(opt_cls):
            seed_everything(1)
            model = mobilenet_v2("tiny", num_classes=4)
            opt = opt_cls(model.parameters(), lr=0.1, momentum=0.9, weight_decay=1e-4, nesterov=True)
            rng = np.random.default_rng(5)
            from repro.nn import functional as F

            for _ in range(5):
                opt.zero_grad()
                x = nn.Tensor(rng.normal(size=(4, 3, 16, 16)).astype(np.float32))
                loss = F.cross_entropy(model(x), rng.integers(0, 4, size=4))
                loss.backward()
                opt.step()
            return model.state_dict()

        ref, flat = train(SGD), train(FlatSGD)
        for key in ref:
            np.testing.assert_array_equal(ref[key], flat[key], err_msg=key)

    def test_flat_params_views_are_live(self):
        p1 = nn.Parameter(np.ones((2, 2), dtype=np.float32))
        p2 = nn.Parameter(np.full(3, 2.0, dtype=np.float32))
        flat = FlatParams([p1, p2])
        assert flat.size == 7
        flat.data += 1.0
        np.testing.assert_allclose(p1.numpy(), np.full((2, 2), 2.0))
        np.testing.assert_allclose(p2.numpy(), np.full(3, 3.0))
        p1.data *= 2.0
        np.testing.assert_allclose(flat.data[:4], 4.0)
        assert flat.check_bound()

    def test_flat_params_dedupes_shared_parameters(self):
        shared = nn.Parameter(np.ones(4, dtype=np.float32))
        flat = FlatParams([shared, shared])
        assert flat.size == 4

    def test_flat_sgd_recovers_from_model_zero_grad(self):
        model = self._model()
        opt = FlatSGD(model.parameters(), lr=0.1, momentum=0.0)
        model.zero_grad()  # sets grads to None, bypassing the flat buffer
        from repro.nn import functional as F

        rng = np.random.default_rng(0)
        loss = F.cross_entropy(
            model(nn.Tensor(rng.normal(size=(2, 3, 16, 16)).astype(np.float32))),
            rng.integers(0, 4, size=2),
        )
        loss.backward()
        before = model.classifier.weight.numpy().copy()
        opt.step()  # must gather the stray grads
        assert not np.allclose(model.classifier.weight.numpy(), before)

    def test_clip_grad_norm_flat_matches_reference(self):
        model = self._model()
        opt = FlatSGD(model.parameters(), lr=0.1)
        opt.zero_grad()
        rng = np.random.default_rng(2)
        for param in opt.params:
            param.grad[...] = rng.normal(size=param.shape).astype(np.float32)
        reference = np.sqrt(sum(float((p.grad.astype(np.float64) ** 2).sum()) for p in opt.params))
        norm = clip_grad_norm_(opt, max_norm=0.5)
        assert norm == pytest.approx(reference, rel=1e-6)
        clipped = np.sqrt(float(np.dot(opt.flat.grad.astype(np.float64), opt.flat.grad)))
        assert clipped == pytest.approx(0.5, rel=1e-5)

    def test_clip_grad_norm_plain_params_fallback(self):
        p = nn.Parameter(np.ones(4, dtype=np.float32))
        p.grad = np.full(4, 3.0, dtype=np.float32)
        norm = clip_grad_norm_([p], max_norm=1.0)
        assert norm == pytest.approx(6.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-5)

    def test_flat_ema_matches_reference_update(self):
        model = self._model()
        ema = ModelEMA(model, decay=0.9)
        reference = {name: value.copy() for name, value in model.state_dict().items()}
        model.classifier.weight.data += 1.0
        ema.update(model)
        state = model.state_dict()
        for name, value in ema.shadow.items():
            if np.issubdtype(value.dtype, np.floating):
                expected = 0.9 * reference[name] + 0.1 * state[name]
                np.testing.assert_allclose(value, expected, atol=1e-6, err_msg=name)

    def test_flat_ema_update_is_allocation_free_per_param(self):
        """The shadow arrays must be stable views, not reallocated per step."""
        model = self._model()
        ema = ModelEMA(model, decay=0.5)
        ids_before = {name: id(value) for name, value in ema.shadow.items()}
        ema.update(model)
        ema.update(model)
        assert ids_before == {name: id(value) for name, value in ema.shadow.items()}


class TestPrefetchingLoader:
    def _loader(self, prefetch, transform=None, seed=9):
        return DataLoader(
            _dataset(), batch_size=16, shuffle=True, transform=transform,
            seed=seed, prefetch=prefetch,
        )

    def test_prefetch_on_off_identical_stream(self):
        transform = Compose([RandomHorizontalFlip(), RandomCrop(2), Normalize()])
        batches_off = [(i.copy(), l.copy()) for i, l in self._loader(False, transform)]
        batches_on = [(i.copy(), l.copy()) for i, l in self._loader(True, transform)]
        assert len(batches_on) == len(batches_off) == 4
        for (img_a, lab_a), (img_b, lab_b) in zip(batches_on, batches_off):
            np.testing.assert_array_equal(img_a, img_b)
            np.testing.assert_array_equal(lab_a, lab_b)

    def test_prefetch_on_off_identical_across_epochs(self):
        a, b = self._loader(True), self._loader(False)
        for _ in range(3):  # RNG state must advance identically epoch to epoch
            for (img_a, lab_a), (img_b, lab_b) in zip(a, b):
                np.testing.assert_array_equal(img_a, img_b)
                np.testing.assert_array_equal(lab_a, lab_b)

    def test_early_break_then_reiterate(self):
        loader = self._loader(True)
        iterator = iter(loader)
        next(iterator)
        del iterator  # abandon mid-epoch; thread must not wedge the loader
        batches = list(loader)
        assert len(batches) == 4

    def test_producer_exception_propagates(self):
        class Boom(Exception):
            pass

        class Exploding:
            def __call__(self, image, rng):
                raise Boom()

        loader = DataLoader(_dataset(), batch_size=16, transform=Exploding(), prefetch=True)
        with pytest.raises(Boom):
            list(loader)

    def test_batched_transforms_match_shapes_and_determinism(self):
        transform = Compose([RandomHorizontalFlip(), RandomCrop(2), Normalize()])
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        images = np.random.default_rng(0).random((8, 3, 12, 12)).astype(np.float32)
        out_a = transform.batch(images, rng_a)
        out_b = transform.batch(images, rng_b)
        assert out_a.shape == images.shape
        np.testing.assert_array_equal(out_a, out_b)

    def test_per_image_callable_still_supported(self):
        calls = []

        class Marker:
            def __call__(self, image, rng):
                calls.append(1)
                return image

        loader = DataLoader(_dataset(n=8), batch_size=8, transform=Marker(), prefetch=True)
        next(iter(loader))
        assert len(calls) == 8


class TestTrainerIntegration:
    def test_compiled_trainer_learns_toy_problem(self):
        dataset = _dataset(n=64)
        seed_everything(0)
        model = mobilenet_v2("tiny", num_classes=4)
        trainer = Trainer(model, ExperimentConfig(epochs=6, batch_size=16, lr=0.05), compile=True)
        history = trainer.fit(dataset, dataset)
        assert trainer._compiled_step is not None
        assert history.train_loss[-1] < history.train_loss[0]

    def test_fit_compiled_matches_eager_fit(self):
        def run(compile_flag):
            dataset = _dataset(n=32)
            seed_everything(0)
            model = mobilenet_v2("tiny", num_classes=4)
            trainer = Trainer(
                model,
                ExperimentConfig(epochs=2, batch_size=16, lr=0.05),
                train_transform=Compose([RandomHorizontalFlip(), Normalize()]),
                compile=compile_flag,
            )
            history = trainer.fit(dataset, dataset)
            return history, model.state_dict()

        hist_e, state_e = run(False)
        hist_c, state_c = run(True)
        np.testing.assert_allclose(hist_c.train_loss, hist_e.train_loss, atol=1e-6)
        np.testing.assert_allclose(hist_c.val_accuracy, hist_e.val_accuracy, atol=1e-6)
        for key in state_e:
            np.testing.assert_allclose(state_c[key], state_e[key], atol=1e-6, err_msg=key)
