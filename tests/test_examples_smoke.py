"""Smoke tests for the example scripts.

The examples are full training runs and far too slow for the unit-test suite,
but they must at least stay importable and expose a well-formed command-line
interface; regressions here are what a new user hits first.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(path.stem for path in EXAMPLES_DIR.glob("*.py"))


def _load(name: str):
    spec = importlib.util.spec_from_file_location(f"example_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_expected_examples_present(self):
        assert {
            "quickstart",
            "downstream_transfer",
            "detection_transfer",
            "ablation_expansion",
            "plt_schedule_ablation",
            "compress_after_netbooster",
            "robustness_and_augmentation",
            "mcu_deployment_report",
        } <= set(EXAMPLE_FILES)

    @pytest.mark.parametrize("name", EXAMPLE_FILES)
    def test_importable_and_has_main(self, name):
        module = _load(name)
        assert callable(getattr(module, "main", None)), f"{name}.py must define main()"
        assert module.__doc__, f"{name}.py must have a module docstring"

    @pytest.mark.parametrize("name", EXAMPLE_FILES)
    def test_help_exits_cleanly(self, name, monkeypatch, capsys):
        module = _load(name)
        monkeypatch.setattr(sys, "argv", [f"{name}.py", "--help"])
        with pytest.raises(SystemExit) as excinfo:
            module.main()
        assert excinfo.value.code == 0
        assert "usage" in capsys.readouterr().out.lower()
