"""Compiled-artifact serialization: bit-identity, robustness, registry plumbing.

The artifact contract (:mod:`repro.runtime.artifact`): a loaded executor is
bit-identical to the freshly compiled one in every mode, and every corruption
of the file or skew between file and code fails with a typed
:class:`~repro.runtime.ArtifactError` — never a silent misexecution.
"""

from __future__ import annotations

import json
import zipfile

import numpy as np
import pytest

import repro
from repro.compress import calibrate, quantize_model
from repro.models import available_models, create_model
from repro.runtime import (
    ArtifactError,
    ArtifactInfo,
    load_artifact,
    model_fingerprint,
    read_artifact_info,
    register_artifact_engine,
    resolve_engine,
    save_artifact,
)
from repro.runtime import artifact as artifact_mod
from repro.train.trainer import StandardLoss
from repro.utils import seed_everything

RESOLUTION = 12
CLASSES = 8
SHAPE = (3, RESOLUTION, RESOLUTION)


def make_model(name="mobilenetv2-tiny", mode="infer", seed=0):
    """A prepared registry model for ``mode`` (quantized+calibrated for int8)."""
    seed_everything(seed)
    model = create_model(name, num_classes=CLASSES)
    rng = np.random.default_rng(seed)
    if mode == "train":
        model.train()
        return model, rng
    model.eval()
    if mode == "int8":
        quantize_model(model)
        batches = [rng.normal(0.2, 0.8, size=(4,) + SHAPE).astype(np.float32) for _ in range(2)]
        calibrate(model, batches)
    return model, rng


def compile_for(model, mode):
    if mode == "train":
        return repro.compile(model, mode="train", loss=StandardLoss(label_smoothing=0.1))
    return repro.compile(model, mode=mode)


def batch_for(rng, n=3):
    return rng.normal(0.2, 0.8, size=(n,) + SHAPE).astype(np.float32)


# --------------------------------------------------------------------------- #
# round trip: loaded executables are bit-identical to freshly compiled
# --------------------------------------------------------------------------- #
class TestRoundTrip:
    @pytest.mark.parametrize("model_name", available_models())
    @pytest.mark.parametrize("mode", ["infer", "int8", "train"])
    def test_bit_identity_every_model_every_mode(self, tmp_path, model_name, mode):
        model, rng = make_model(model_name, mode)
        fresh = compile_for(model, mode)
        path = tmp_path / f"{model_name}-{mode}.rpa"
        info = fresh.save(str(path))
        assert isinstance(info, ArtifactInfo)
        assert info.mode == mode
        loaded = load_artifact(str(path))
        x = batch_for(rng)
        if mode == "train":
            labels = rng.integers(0, CLASSES, size=len(x))
            loss_a, logits_a = fresh.numpy_forward(x, labels)
            loss_b, logits_b = loaded.numpy_forward(x, labels)
            assert loss_a == loss_b
            np.testing.assert_array_equal(logits_a, logits_b)
            for (name, p_a), (_, p_b) in zip(
                fresh.model.named_parameters(), loaded.model.named_parameters()
            ):
                assert p_a.grad is not None, name
                np.testing.assert_array_equal(p_a.grad, p_b.grad)
        else:
            np.testing.assert_array_equal(fresh.numpy_forward(x), loaded.numpy_forward(x))

    def test_memory_plan_before_save_does_not_poison_record(self, tmp_path):
        """memory_plan()/describe() re-annotate the live graph for the shape
        they saw; saving afterwards must still produce a loadable artifact
        (regression: recorded ``out_shape`` tripped the drift check)."""
        model, rng = make_model()
        fresh = compile_for(model, "infer")
        x = batch_for(rng)
        fresh.numpy_forward(x)
        fresh.memory_plan((4,) + SHAPE)
        fresh.describe()
        path = tmp_path / "net.rpa"
        fresh.save(str(path))
        loaded = load_artifact(str(path))
        np.testing.assert_array_equal(fresh.numpy_forward(x), loaded.numpy_forward(x))

    def test_loaded_executor_carries_artifact_info(self, tmp_path):
        model, _ = make_model()
        path = tmp_path / "net.rpa"
        compile_for(model, "infer").save(str(path), input_shape=SHAPE)
        loaded = load_artifact(str(path))
        info = loaded.artifact
        assert info.mode == "infer"
        assert tuple(info.input_shape) == SHAPE
        assert info.model["name"] == "mobilenetv2-tiny"
        assert len(info.fingerprint) == 64
        assert "mobilenetv2-tiny" in info.summary()

    def test_int8_state_restored_exactly(self, tmp_path):
        """Quantized weights (data-dependent int8/int16 dtypes) survive exactly."""
        model, _ = make_model(mode="int8")
        fresh = compile_for(model, "int8")
        path = tmp_path / "net.rpa"
        fresh.save(str(path))
        loaded = load_artifact(str(path))
        fresh_state = fresh.source.state_dict()
        loaded_state = loaded.source.state_dict()
        assert set(fresh_state) == set(loaded_state)
        for name, value in fresh_state.items():
            assert value.dtype == loaded_state[name].dtype, name
            np.testing.assert_array_equal(value, loaded_state[name])

    def test_save_load_is_stable_across_generations(self, tmp_path):
        """save -> load -> save again produces the same fingerprint."""
        model, _ = make_model()
        first = tmp_path / "a.rpa"
        second = tmp_path / "b.rpa"
        info_a = compile_for(model, "infer").save(str(first))
        loaded = load_artifact(str(first))
        info_b = loaded.save(str(second))
        assert info_a.fingerprint == info_b.fingerprint

    def test_read_artifact_info_verify(self, tmp_path):
        model, _ = make_model()
        path = tmp_path / "net.rpa"
        compile_for(model, "infer").save(str(path))
        info = read_artifact_info(str(path), verify=True)
        assert info.mode == "infer"

    def test_top_level_load_export(self, tmp_path):
        model, _ = make_model()
        path = tmp_path / "net.rpa"
        compile_for(model, "infer").save(str(path))
        assert repro.load is load_artifact
        assert repro.ArtifactError is ArtifactError
        loaded = repro.load(str(path))
        assert loaded.artifact.mode == "infer"


# --------------------------------------------------------------------------- #
# robustness: every skew fails typed, never silently
# --------------------------------------------------------------------------- #
class TestRobustness:
    def save_one(self, tmp_path, mode="infer"):
        model, rng = make_model(mode=mode)
        path = tmp_path / "net.rpa"
        compile_for(model, mode).save(str(path))
        return path, model, rng

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError, match="does not exist"):
            load_artifact(str(tmp_path / "nope.rpa"))

    def test_not_an_artifact(self, tmp_path):
        path = tmp_path / "garbage.rpa"
        path.write_bytes(b"this is not an artifact" * 100)
        with pytest.raises(ArtifactError, match="not a readable repro artifact"):
            load_artifact(str(path))

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "foreign.rpa"
        with open(path, "wb") as handle:  # np.savez(path) would append .npz
            np.savez(handle, weights=np.zeros(4))
        with pytest.raises(ArtifactError, match="not a repro artifact"):
            load_artifact(str(path))

    def test_truncated_file(self, tmp_path):
        path, _, _ = self.save_one(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ArtifactError):
            load_artifact(str(path))

    def test_corrupted_payload(self, tmp_path):
        path, _, _ = self.save_one(tmp_path)
        data = bytearray(path.read_bytes())
        # flip bytes in the middle of the zip payload, keeping the container
        # readable enough that the corruption must be caught by validation
        for i in range(len(data) // 2, len(data) // 2 + 64):
            data[i] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(ArtifactError):
            load_artifact(str(path))

    def test_format_version_skew(self, tmp_path, monkeypatch):
        monkeypatch.setattr(artifact_mod, "FORMAT_VERSION", 999)
        path, _, _ = self.save_one(tmp_path)
        monkeypatch.undo()
        with pytest.raises(ArtifactError, match="format version"):
            load_artifact(str(path))

    def test_cross_mode_confusion(self, tmp_path):
        path, _, _ = self.save_one(tmp_path, mode="int8")
        with pytest.raises(ArtifactError, match="refusing cross-mode"):
            load_artifact(str(path), mode="infer")
        # aliases resolve before the check: "quantized" is the stored mode
        assert load_artifact(str(path), mode="quantized").artifact.mode == "int8"

    def test_fingerprint_mismatch_after_model_mutation(self, tmp_path):
        path, model, _ = self.save_one(tmp_path)
        param = next(iter(model.parameters()))
        param.data[...] = param.data + 1.0
        with pytest.raises(ArtifactError, match="mutated"):
            load_artifact(str(path), model=model)

    def test_matching_model_accepted(self, tmp_path):
        path, model, rng = self.save_one(tmp_path)
        loaded = load_artifact(str(path), model=model)
        x = batch_for(rng)
        np.testing.assert_array_equal(
            loaded.numpy_forward(x), compile_for(model, "infer").numpy_forward(x)
        )

    def test_header_mode_tamper_breaks_fingerprint(self, tmp_path):
        """Rewriting the header (e.g. its mode) cannot go unnoticed."""
        path, _, _ = self.save_one(tmp_path)
        with np.load(path, allow_pickle=False) as data:
            entries = {name: data[name] for name in data.files}
        header = json.loads(bytes(entries["__header__"]).decode("utf-8"))
        header["mode"] = "int8"
        entries["__header__"] = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        )
        with open(path, "wb") as handle:  # np.savez(path) would append .npz
            np.savez(handle, **entries)
        with pytest.raises(ArtifactError):
            load_artifact(str(path))

    def test_error_on_unreadable_zip_member(self, tmp_path):
        path, _, _ = self.save_one(tmp_path)
        # rewrite the archive without one state entry: manifest says truncated
        with zipfile.ZipFile(path) as src:
            names = src.namelist()
            keep = [n for n in names if "state::" not in n or n == sorted(names)[-1]]
            payload = {n: src.read(n) for n in keep}
        assert len(payload) < len(names)
        with zipfile.ZipFile(path, "w") as dst:
            for name, blob in payload.items():
                dst.writestr(name, blob)
        with pytest.raises(ArtifactError):
            load_artifact(str(path))

    def test_model_fingerprint_tracks_structure_and_state(self):
        model, _ = make_model()
        base = model_fingerprint(model, "infer")
        assert base == model_fingerprint(model, "infer")
        assert base != model_fingerprint(model, "train")
        param = next(iter(model.parameters()))
        param.data[...] = param.data + 1.0
        assert base != model_fingerprint(model, "infer")


# --------------------------------------------------------------------------- #
# engine registry: artifact-backed engines
# --------------------------------------------------------------------------- #
class TestArtifactEngines:
    def test_register_and_compile(self, tmp_path):
        model, rng = make_model()
        path = tmp_path / "net.rpa"
        compile_for(model, "infer").save(str(path))
        spec = register_artifact_engine("test-artifact-engine", str(path))
        try:
            assert spec.mode == "infer"
            assert resolve_engine("test-artifact-engine") is spec
            loaded = spec.compile()
            x = batch_for(rng)
            np.testing.assert_array_equal(
                loaded.numpy_forward(x), compile_for(model, "infer").numpy_forward(x)
            )
        finally:
            from repro.runtime.frontend import _ENGINES

            _ENGINES.pop("test-artifact-engine", None)

    def test_register_missing_file_fails_eagerly(self, tmp_path):
        with pytest.raises(ArtifactError, match="does not exist"):
            register_artifact_engine("doomed", str(tmp_path / "nope.rpa"))

    def test_save_artifact_function_matches_method(self, tmp_path):
        model, _ = make_model()
        net = compile_for(model, "infer")
        a = net.save(str(tmp_path / "a.rpa"))
        b = save_artifact(net, str(tmp_path / "b.rpa"))
        assert a.fingerprint == b.fingerprint
