"""Unit tests for the common-corruption generators."""

import numpy as np
import pytest

from repro.data.corruptions import (
    CORRUPTIONS,
    available_corruptions,
    brightness,
    contrast,
    corrupt,
    gaussian_blur,
    gaussian_noise,
    impulse_noise,
    pixelate,
    shot_noise,
)


@pytest.fixture
def images(rng):
    return rng.uniform(0.0, 1.0, size=(4, 3, 16, 16)).astype(np.float32)


class TestCorruptionContract:
    """Properties every corruption must satisfy."""

    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_preserves_shape_and_dtype(self, images, name):
        out = corrupt(images, name, severity=3)
        assert out.shape == images.shape
        assert out.dtype == np.float32

    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_does_not_modify_input(self, images, name):
        before = images.copy()
        corrupt(images, name, severity=5)
        np.testing.assert_array_equal(images, before)

    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_severity_five_changes_more_than_severity_one(self, images, name):
        light = np.abs(corrupt(images, name, severity=1) - images).mean()
        heavy = np.abs(corrupt(images, name, severity=5) - images).mean()
        assert heavy >= light

    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_invalid_severity_rejected(self, images, name):
        with pytest.raises(ValueError):
            corrupt(images, name, severity=0)
        with pytest.raises(ValueError):
            corrupt(images, name, severity=6)

    def test_unknown_corruption_rejected(self, images):
        with pytest.raises(KeyError):
            corrupt(images, "motion_blur_9000")

    def test_registry_and_listing_agree(self):
        assert available_corruptions() == sorted(CORRUPTIONS)

    def test_non_batch_input_rejected(self):
        with pytest.raises(ValueError):
            gaussian_noise(np.zeros((3, 16, 16), dtype=np.float32))


class TestSpecificCorruptions:
    def test_gaussian_noise_is_zero_mean(self, images):
        delta = gaussian_noise(images, severity=3, seed=1) - images
        assert abs(delta.mean()) < 0.02

    def test_gaussian_noise_deterministic_given_seed(self, images):
        a = gaussian_noise(images, severity=2, seed=7)
        b = gaussian_noise(images, severity=2, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_shot_noise_scales_with_brightness(self, rng):
        dark = np.full((2, 3, 8, 8), 0.05, dtype=np.float32)
        bright = np.full((2, 3, 8, 8), 0.95, dtype=np.float32)
        dark_std = shot_noise(dark, severity=4, seed=0).std()
        bright_std = shot_noise(bright, severity=4, seed=0).std()
        assert bright_std > dark_std

    def test_impulse_noise_sets_extremes(self, images):
        out = impulse_noise(images, severity=5, seed=0)
        changed = out != images
        assert changed.any()
        extremes = np.isin(out[changed], [images.min(), images.max()])
        assert extremes.all()

    def test_blur_reduces_high_frequency_energy(self, rng):
        noisy = rng.uniform(0, 1, size=(1, 3, 32, 32)).astype(np.float32)
        blurred = gaussian_blur(noisy, severity=5)
        original_variation = np.abs(np.diff(noisy, axis=-1)).mean()
        blurred_variation = np.abs(np.diff(blurred, axis=-1)).mean()
        assert blurred_variation < original_variation

    def test_pixelate_creates_constant_blocks(self, rng):
        image = rng.uniform(0, 1, size=(1, 1, 16, 16)).astype(np.float32)
        out = pixelate(image, severity=4)  # factor 4
        block = out[0, 0, :4, :4]
        assert np.allclose(block, block[0, 0])

    def test_brightness_shifts_mean(self, images):
        out = brightness(images, severity=3)
        assert out.mean() == pytest.approx(images.mean() + 0.3, abs=1e-5)

    def test_contrast_compresses_range(self, images):
        out = contrast(images, severity=5)
        assert out.std() < images.std()
        # Per-image mean is preserved.
        np.testing.assert_allclose(
            out.mean(axis=(1, 2, 3)), images.mean(axis=(1, 2, 3)), atol=1e-4
        )
