"""Shared test helpers (gradient checking, tensor factories).

Kept in a uniquely-named module (not ``conftest.py``) so ``from helpers
import ...`` resolves unambiguously regardless of pytest's rootdir ordering —
``benchmarks/conftest.py`` would otherwise shadow ``tests/conftest.py`` on
``sys.path``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["numerical_gradient", "assert_gradients_close", "make_tensor"]


def numerical_gradient(func, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of a scalar function of ``array``."""
    grad = np.zeros_like(array, dtype=np.float64)
    iterator = np.nditer(array, flags=["multi_index"])
    for _ in iterator:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        plus = func()
        array[index] = original - eps
        minus = func()
        array[index] = original
        grad[index] = (plus - minus) / (2 * eps)
    return grad


def assert_gradients_close(analytic: np.ndarray, numeric: np.ndarray, atol: float = 1e-5):
    np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=atol)


def make_tensor(shape, rng: np.random.Generator | None = None, requires_grad: bool = True) -> Tensor:
    rng = rng or np.random.default_rng(0)
    return Tensor(rng.normal(size=shape), requires_grad=requires_grad, dtype=np.float64)
