"""Integration-style tests for the NetBooster facade (expand → train → PLT → contract)."""

import numpy as np
import pytest

from repro import nn
from repro.core import ExpansionConfig, NetBooster, NetBoosterConfig
from repro.data import SyntheticImageNet, downstream_dataset
from repro.eval import count_complexity
from repro.models import mobilenet_v2
from repro.train import evaluate
from repro.utils import ExperimentConfig


@pytest.fixture(scope="module")
def tiny_corpus():
    return SyntheticImageNet(
        num_classes=4, samples_per_class=12, val_samples_per_class=4, resolution=16
    )


def _fast_config(**overrides):
    defaults = dict(
        expansion=ExpansionConfig(fraction=0.5),
        pretrain=ExperimentConfig(epochs=2, batch_size=16, lr=0.05),
        finetune=ExperimentConfig(epochs=2, batch_size=16, lr=0.02),
        plt_decay_fraction=0.5,
    )
    defaults.update(overrides)
    return NetBoosterConfig(**defaults)


class TestNetBoosterSteps:
    def test_build_giant_leaves_original_untouched(self):
        booster = NetBooster(_fast_config())
        model = mobilenet_v2("tiny", num_classes=4)
        before = count_complexity(model, (3, 16, 16)).params
        giant, records = booster.build_giant(model)
        assert count_complexity(model, (3, 16, 16)).params == before
        assert count_complexity(giant, (3, 16, 16)).params > before
        assert records

    def test_plt_finetune_linearises_all_activations(self, tiny_corpus):
        booster = NetBooster(_fast_config())
        giant, records = booster.build_giant(mobilenet_v2("tiny", num_classes=4))
        history, schedule = booster.plt_finetune(giant, tiny_corpus.train, tiny_corpus.val)
        assert schedule.finished
        assert all(act.is_linear for act in schedule.activations)
        assert len(history.val_accuracy) == 2

    def test_plt_finetune_can_switch_label_space(self, tiny_corpus):
        booster = NetBooster(_fast_config())
        giant, records = booster.build_giant(mobilenet_v2("tiny", num_classes=4))
        booster.pretrain_giant(giant, tiny_corpus.train)
        target_train, target_val = downstream_dataset("pets", resolution=16)
        booster.plt_finetune(giant, target_train, target_val, new_num_classes=target_train.num_classes)
        contracted = booster.contract(giant, records)
        logits = contracted(nn.Tensor(target_val.images[:2]))
        assert logits.shape == (2, target_train.num_classes)

    def test_contract_restores_original_structure(self, tiny_corpus):
        booster = NetBooster(_fast_config())
        model = mobilenet_v2("tiny", num_classes=4)
        giant, records = booster.build_giant(model)
        booster.plt_finetune(giant, tiny_corpus.train, None)
        contracted = booster.contract(giant, records)
        original = count_complexity(model, (3, 16, 16))
        restored = count_complexity(contracted, (3, 16, 16))
        assert restored.flops == original.flops
        assert restored.params == original.params


class TestNetBoosterFullRun:
    def test_run_returns_consistent_result(self, tiny_corpus):
        booster = NetBooster(_fast_config())
        result = booster.run(
            mobilenet_v2("tiny", num_classes=4), tiny_corpus.train, tiny_corpus.val
        )
        # Contraction is exact, so the contracted model matches the giant's accuracy.
        assert result.final_accuracy == pytest.approx(result.giant_accuracy, abs=1e-6)
        assert len(result.pretrain_history.train_loss) == 2
        assert len(result.finetune_history.train_loss) == 2
        assert result.records
        # Histories record finite losses.
        assert np.isfinite(result.pretrain_history.train_loss).all()

    def test_run_with_downstream_target(self, tiny_corpus):
        booster = NetBooster(_fast_config())
        target_train, target_val = downstream_dataset("pets", resolution=16)
        result = booster.run(
            mobilenet_v2("tiny", num_classes=4),
            tiny_corpus.train,
            tiny_corpus.val,
            target_train=target_train,
            target_val=target_val,
            target_num_classes=target_train.num_classes,
        )
        accuracy = evaluate(result.model, target_val)
        assert accuracy == pytest.approx(result.final_accuracy, abs=1e-6)

    def test_contracted_model_is_trainable_further(self, tiny_corpus):
        """The contracted TNN is a plain model and supports further finetuning."""
        from repro.train import Trainer

        booster = NetBooster(_fast_config())
        result = booster.run(mobilenet_v2("tiny", num_classes=4), tiny_corpus.train, tiny_corpus.val)
        trainer = Trainer(result.model, ExperimentConfig(epochs=1, batch_size=16, lr=0.01))
        history = trainer.fit(tiny_corpus.train, tiny_corpus.val)
        assert len(history.val_accuracy) == 1
