"""Tests for the unified graph IR, the pass pipelines and the repro.compile frontend."""

import warnings

import numpy as np
import pytest

import repro
from repro import nn
from repro.compress import calibrate, quantize_model
from repro.models import create_model
from repro.models.blocks import ConvBNAct, InvertedResidual
from repro.runtime import (
    CompiledNet,
    QuantizedNet,
    TrainStep,
    available_engines,
    compile_model,
    resolve_engine,
    trace,
)
from repro.runtime.ir import CompileError, Graph, OpNode
from repro.runtime.passes import (
    AssignLayout,
    EliminateDropout,
    FoldBatchNorm,
    FuseActivations,
    InferShapes,
    PassManager,
    PassOrderError,
    PlanMemory,
    inference_pipeline,
    int8_pipeline,
    training_pipeline,
)
from repro.utils import seed_everything


def _randomize_bn_stats(model: nn.Module, rng) -> None:
    for _, module in model.named_modules():
        if isinstance(module, nn.BatchNorm2d):
            module.running_mean[...] = rng.normal(0.0, 0.2, size=module.num_features)
            module.running_var[...] = rng.uniform(0.5, 1.5, size=module.num_features)


def _quantized_model(name: str, rng, res: int = 16):
    model = create_model(name, num_classes=8)
    _randomize_bn_stats(model, rng)
    model.eval()
    quantize_model(model)
    batches = [rng.normal(0.2, 0.8, size=(8, 3, res, res)).astype(np.float32) for _ in range(2)]
    calibrate(model, batches)
    return model


class TestTracer:
    @pytest.mark.parametrize("name", ["mobilenetv2-tiny", "mcunet"])
    def test_round_trip_covers_every_leaf(self, name):
        """Every conv/linear/bn leaf of the model appears exactly once in the graph."""
        model = create_model(name, num_classes=8)
        graph = trace(model)
        traced = [node.module for node, _ in graph.walk() if node.kind in ("conv", "linear", "bn")]
        leaves = [
            m
            for _, m in model.named_modules()
            if isinstance(m, (nn.Conv2d, nn.Linear, nn.BatchNorm2d))
        ]
        assert len(traced) == len(leaves)
        assert set(map(id, traced)) == set(map(id, leaves))

    @pytest.mark.parametrize("name", ["mobilenetv2-tiny", "mcunet"])
    def test_round_trip_compiles_to_eager_parity(self, rng, name):
        """Trace -> passes -> backend reproduces the eager forward."""
        model = create_model(name, num_classes=8)
        _randomize_bn_stats(model, rng)
        model.eval()
        x = rng.normal(size=(2, 3, 16, 16)).astype(np.float32)
        with nn.no_grad():
            eager = model(nn.Tensor(x)).numpy()
        out = repro.compile(model).numpy_forward(x)
        np.testing.assert_allclose(out, eager, rtol=1e-4, atol=1e-4)

    def test_residual_blocks_become_residual_nodes(self):
        block = InvertedResidual(6, 6, stride=1, expand_ratio=2)
        graph = trace(block)
        assert [n.kind for n in graph.nodes] == ["residual"]
        body_kinds = graph.nodes[0].body.kinds()
        assert body_kinds.count("conv") == 3 and body_kinds.count("bn") == 3

    def test_unknown_module_becomes_eager_node(self):
        class Odd(nn.Module):
            def __init__(self):
                super().__init__()
                self.linear = nn.Linear(4, 2)

            def forward(self, x):
                return self.linear(x).tanh()

        assert trace(Odd()).kinds() == ["eager"]

    def test_node_names_follow_module_paths(self):
        model = create_model("mobilenetv2-tiny", num_classes=4)
        graph = trace(model)
        names = [node.name for node, _ in graph.walk()]
        assert any(name.startswith("features.0") for name in names)
        assert "classifier" in names


class TestPassOrdering:
    def test_fusion_requires_fold_first(self):
        with pytest.raises(PassOrderError):
            PassManager([FuseActivations(), FoldBatchNorm()])

    def test_fold_then_fuse_is_valid(self):
        PassManager([FoldBatchNorm(), FuseActivations()])  # must not raise

    def test_plan_memory_requires_shapes(self):
        with pytest.raises(PassOrderError):
            PassManager([PlanMemory()])

    def test_plan_memory_requires_layout_on_graph(self):
        graph = trace(ConvBNAct(3, 4, kernel_size=3))
        with pytest.raises(PassOrderError):
            PassManager([InferShapes((1, 3, 8, 8)), PlanMemory()]).run(graph)

    def test_layout_before_plan_is_valid(self):
        graph = trace(ConvBNAct(3, 4, kernel_size=3))
        PassManager([AssignLayout("NCHW"), InferShapes((1, 3, 8, 8)), PlanMemory()]).run(graph)
        assert graph.meta["memory_plan"].peak_value_int8_bytes > 0

    def test_declared_pipelines_are_valid(self):
        for pipeline in (inference_pipeline(), int8_pipeline(), training_pipeline(0.1)):
            PassManager(pipeline)  # must not raise

    def test_bn_folds_recorded_before_fusion(self):
        block = ConvBNAct(3, 4, kernel_size=3)  # conv -> bn -> relu6
        graph = trace(block)
        PassManager([EliminateDropout(), FoldBatchNorm(), FuseActivations()]).run(graph)
        assert graph.kinds() == ["conv"]
        conv = graph.nodes[0]
        assert len(conv.meta["bn_folds"]) == 1
        assert conv.meta["act"] == ("relu6",)


class TestFrontend:
    def test_mode_dispatch_types(self, rng):
        model = create_model("mobilenetv2-tiny", num_classes=4)
        model.eval()
        assert isinstance(repro.compile(model), CompiledNet)
        assert isinstance(repro.compile(model, mode="train"), TrainStep)
        qmodel = _quantized_model("mobilenetv2-tiny", rng)
        assert isinstance(repro.compile(qmodel, mode="int8"), QuantizedNet)

    def test_unknown_mode_raises(self):
        with pytest.raises(CompileError):
            repro.compile(create_model("mobilenetv2-tiny", num_classes=4), mode="jit")

    def test_unlowerable_loss_raises_compile_error(self):
        class WeirdLoss:
            def __call__(self, model, x, y):  # pragma: no cover - never run
                raise NotImplementedError

        with pytest.raises(CompileError):
            repro.compile(create_model("mcunet", num_classes=4), mode="train", loss=WeirdLoss())

    def test_infer_bit_identical_to_legacy_compile_net(self, rng):
        """The redesign preserves the pre-IR engines bit for bit."""
        from repro.runtime import compile_net

        model = create_model("mobilenetv2-tiny", num_classes=8)
        _randomize_bn_stats(model, rng)
        model.eval()
        x = rng.normal(size=(3, 3, 16, 16)).astype(np.float32)
        new = repro.compile(model).numpy_forward(x)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = compile_net(model).numpy_forward(x)
        np.testing.assert_array_equal(new, legacy)

    def test_int8_bit_identical_to_legacy_compile_quantized(self, rng):
        from repro.runtime import compile_quantized

        model = _quantized_model("mcunet", rng)
        x = rng.normal(0.2, 0.8, size=(2, 3, 16, 16)).astype(np.float32)
        new = repro.compile(model, mode="int8", dw_kernel="einsum").numpy_forward(x)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = compile_quantized(model, dw_kernel="einsum").numpy_forward(x)
        np.testing.assert_array_equal(new, legacy)

    def test_train_bit_identical_to_legacy_compile_training_step(self, rng):
        from repro.runtime import compile_training_step

        def one_step(use_frontend: bool):
            seed_everything(7)
            model = create_model("mobilenetv2-tiny", num_classes=8)
            model.train()
            if use_frontend:
                step = repro.compile(model, mode="train")
            else:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", DeprecationWarning)
                    step = compile_training_step(model)
            gen = np.random.default_rng(3)
            x = gen.normal(size=(4, 3, 16, 16)).astype(np.float32)
            y = gen.integers(0, 8, size=4)
            loss, logits = step(x, y)
            return loss, logits, [p.grad.copy() for p in model.parameters() if p.grad is not None]

        loss_a, logits_a, grads_a = one_step(True)
        loss_b, logits_b, grads_b = one_step(False)
        assert loss_a == loss_b
        np.testing.assert_array_equal(logits_a, logits_b)
        for ga, gb in zip(grads_a, grads_b):
            np.testing.assert_array_equal(ga, gb)

    def test_describe_reports_passes_and_nodes(self, rng):
        model = create_model("mobilenetv2-tiny", num_classes=4)
        model.eval()
        report = repro.compile(model).describe()
        assert "fold_batchnorm" in report and "fuse_activations" in report
        assert "features.0.conv" in report
        qreport = repro.compile(_quantized_model("mobilenetv2-tiny", rng), mode="int8").describe()
        assert "lower_int8" in qreport and "grid=" in qreport

    def test_legacy_wrappers_warn_exactly_once(self):
        from repro.runtime import compile_net, frontend

        model = create_model("mobilenetv2-tiny", num_classes=4)
        model.eval()
        frontend._DEPRECATION_SEEN.discard("compile_net")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            compile_net(model)
            compile_net(model)
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "repro.compile" in str(deprecations[0].message)

    def test_engine_registry_resolves_serving_backends(self):
        assert {"float", "int8"} <= set(available_engines())
        assert resolve_engine("float").mode == "infer"
        assert resolve_engine("int8").mode == "int8"
        with pytest.raises(KeyError):
            resolve_engine("tpu")

    def test_options_and_overrides_are_exclusive(self):
        model = create_model("mobilenetv2-tiny", num_classes=4)
        with pytest.raises(ValueError):
            compile_model(model, options=repro.CompileOptions(), dw_kernel="einsum")


class TestMemoryPlans:
    def test_float_compiled_net_reports_arena_plan(self, rng):
        model = create_model("mobilenetv2-tiny", num_classes=8)
        model.eval()
        plan = repro.compile(model).memory_plan((1, 3, 16, 16))
        assert plan.peak_value_int8_bytes > 0
        assert plan.arena_elements > 0
        assert "peak working set" in plan.summary()

    def test_float_plan_matches_analytic_peak_on_plain_chain(self, rng):
        """On a fusion-free sequential chain the liveness plan equals
        max(input + output) — the analytic deployment approximation.  (With a
        fusable activation in the chain the plan comes out *tighter*, because
        the compiled program runs conv+act as one step.)"""
        from repro.eval.deployment import peak_activation_memory

        model = nn.Sequential(
            nn.Conv2d(3, 8, 3, stride=1, padding=0),
            nn.Conv2d(8, 4, 3, stride=1, padding=0),
            nn.Conv2d(4, 4, 3, stride=1, padding=0),
        )
        model.eval()
        plan = repro.compile(model).memory_plan((1, 3, 12, 12))
        assert plan.peak_value_int8_bytes == peak_activation_memory(model, (3, 12, 12))

    def test_train_step_reports_forward_plan(self):
        model = create_model("mcunet", num_classes=4)
        step = repro.compile(model, mode="train")
        assert step.memory_plan((2, 3, 16, 16)).peak_value_int8_bytes > 0

    def test_quantized_net_memory_plan_alias(self, rng):
        engine = repro.compile(_quantized_model("mobilenetv2-tiny", rng), mode="int8")
        shape = (1, 3, 16, 16)
        assert (
            engine.memory_plan(shape).peak_value_int8_bytes
            == engine.memory_report(shape).peak_value_int8_bytes
        )

    def test_deployment_report_surfaces_planner_peaks(self, rng):
        from repro.eval.deployment import deployment_report

        model = create_model("mobilenetv2-tiny", num_classes=8)
        model.eval()
        report = deployment_report(model, (3, 16, 16))
        assert report.planner_backend == "float"
        assert report.planned_peak_int8_bytes > 0
        assert "planned peak SRAM" in report.summary()

        qmodel = _quantized_model("mobilenetv2-tiny", rng)
        qreport = deployment_report(qmodel, (3, 16, 16))
        assert qreport.planner_backend == "int8"
        assert qreport.planned_peak_int8_bytes > 0
