"""Unit tests for the classification trainer, metrics and transfer recipes."""

import numpy as np
import pytest

from repro import nn
from repro.data import ClassificationDataset, RandomHorizontalFlip, SyntheticImageNet
from repro.models import mobilenet_v2
from repro.train import (
    StandardLoss,
    Trainer,
    TrainingHistory,
    accuracy,
    evaluate,
    finetune,
    reset_classifier,
    top_k_accuracy,
)
from repro.train.metrics import AverageMeter
from repro.utils import ExperimentConfig


def _toy_dataset(n=32, classes=4, size=12, seed=0):
    """Linearly separable toy dataset: channel mean encodes the class."""
    rng = np.random.default_rng(seed)
    labels = np.arange(n) % classes
    images = rng.normal(0.3, 0.05, size=(n, 3, size, size)).astype(np.float32)
    for i, label in enumerate(labels):
        images[i, 0] += 0.5 * label
    return ClassificationDataset(images, labels, classes)


class SmallNet(nn.Module):
    def __init__(self, classes=4):
        super().__init__()
        self.features = nn.Sequential(nn.Conv2d(3, 8, 3, stride=2, padding=1), nn.ReLU())
        self.pool = nn.GlobalAvgPool2d()
        self.flatten = nn.Flatten()
        self.classifier = nn.Linear(8, classes)

    def forward(self, x):
        return self.classifier(self.flatten(self.pool(self.features(x))))


class TestMetrics:
    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [2.0, 1.0]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(200 / 3)

    def test_top_k(self):
        logits = np.array([[3.0, 2.0, 1.0, 0.0]])
        assert top_k_accuracy(logits, np.array([2]), k=3) == 100.0
        assert top_k_accuracy(logits, np.array([3]), k=3) == 0.0

    def test_average_meter(self):
        meter = AverageMeter()
        meter.update(1.0, n=2)
        meter.update(4.0, n=1)
        assert meter.average == pytest.approx(2.0)
        meter.reset()
        assert meter.average == 0.0


class TestTrainer:
    def test_learns_separable_toy_problem(self):
        dataset = _toy_dataset(n=64)
        model = SmallNet()
        trainer = Trainer(model, ExperimentConfig(epochs=25, batch_size=16, lr=0.05))
        history = trainer.fit(dataset, dataset)
        assert history.val_accuracy[-1] > 80.0
        assert history.train_loss[0] > history.train_loss[-1]

    def test_history_lengths_and_lr_schedule(self):
        dataset = _toy_dataset()
        trainer = Trainer(SmallNet(), ExperimentConfig(epochs=3, batch_size=8, lr=0.1))
        history = trainer.fit(dataset, dataset)
        assert len(history.train_loss) == 3
        assert len(history.val_accuracy) == 3
        assert len(history.learning_rate) == 3
        assert history.learning_rate[0] == pytest.approx(0.1)
        assert history.learning_rate[-1] < 0.1  # cosine decays

    def test_iteration_and_epoch_callbacks_invoked(self):
        dataset = _toy_dataset(n=16)
        iteration_calls, epoch_calls = [], []
        trainer = Trainer(
            SmallNet(),
            ExperimentConfig(epochs=2, batch_size=8, lr=0.01),
            iteration_callbacks=[iteration_calls.append],
            epoch_callbacks=[lambda epoch, history: epoch_calls.append(epoch)],
        )
        trainer.fit(dataset)
        assert len(iteration_calls) == 4  # 2 batches x 2 epochs
        assert epoch_calls == [0, 1]

    def test_custom_loss_computer_used(self):
        dataset = _toy_dataset(n=16)
        calls = []

        class Recording(StandardLoss):
            def __call__(self, model, images, labels):
                calls.append(len(labels))
                return super().__call__(model, images, labels)

        trainer = Trainer(SmallNet(), ExperimentConfig(epochs=1, batch_size=8, lr=0.01), loss_computer=Recording())
        trainer.fit(dataset)
        assert sum(calls) == 16

    def test_train_transform_applied(self):
        dataset = _toy_dataset(n=8)
        trainer = Trainer(
            SmallNet(),
            ExperimentConfig(epochs=1, batch_size=8, lr=0.01),
            train_transform=RandomHorizontalFlip(p=1.0),
        )
        history = trainer.fit(dataset, dataset)
        assert len(history.train_loss) == 1

    def test_evaluate_matches_module_function(self):
        dataset = _toy_dataset(n=16)
        model = SmallNet()
        trainer = Trainer(model, ExperimentConfig(epochs=1, batch_size=8, lr=0.01))
        trainer.fit(dataset)
        assert trainer.evaluate(dataset) == pytest.approx(evaluate(model, dataset))

    def test_invalid_schedule_name_raises(self):
        with pytest.raises(ValueError):
            Trainer(SmallNet(), ExperimentConfig(epochs=1, lr_schedule="exotic"))

    def test_history_extend_and_best(self):
        a = TrainingHistory(train_loss=[1.0], train_accuracy=[10.0], val_accuracy=[20.0], learning_rate=[0.1])
        b = TrainingHistory(train_loss=[0.5], train_accuracy=[30.0], val_accuracy=[40.0], learning_rate=[0.05])
        a.extend(b)
        assert a.best_val_accuracy == 40.0
        assert a.final_val_accuracy == 40.0
        assert len(a.train_loss) == 2


class TestTransfer:
    def test_reset_classifier_on_model_zoo(self):
        model = mobilenet_v2("tiny", num_classes=10)
        reset_classifier(model, 3)
        assert model.classifier.out_features == 3

    def test_reset_classifier_fallback_linear_attribute(self):
        model = SmallNet(classes=5)
        reset_classifier(model, 2)
        assert model.classifier.out_features == 2

    def test_reset_classifier_unsupported_model(self):
        with pytest.raises(TypeError):
            reset_classifier(nn.Sequential(nn.ReLU()), 2)

    def test_finetune_changes_head_and_trains(self):
        corpus = SyntheticImageNet(num_classes=3, samples_per_class=6, val_samples_per_class=2, resolution=16)
        model = mobilenet_v2("tiny", num_classes=3)
        history = finetune(
            model,
            corpus.train,
            corpus.val,
            ExperimentConfig(epochs=1, batch_size=8, lr=0.01),
            new_num_classes=3,
        )
        assert len(history.val_accuracy) == 1

    def test_finetune_freeze_backbone_only_updates_head(self):
        corpus = SyntheticImageNet(num_classes=3, samples_per_class=4, val_samples_per_class=2, resolution=16)
        model = mobilenet_v2("tiny", num_classes=3)
        stem_before = model.features[0].conv.weight.numpy().copy()
        head_before = model.classifier.weight.numpy().copy()
        finetune(
            model,
            corpus.train,
            corpus.val,
            ExperimentConfig(epochs=1, batch_size=8, lr=0.05),
            freeze_backbone=True,
        )
        np.testing.assert_allclose(model.features[0].conv.weight.numpy(), stem_before)
        assert not np.allclose(model.classifier.weight.numpy(), head_before)


class TestCheckpoint:
    def _setup(self, epochs=4, warmup=1):
        from repro.utils.seed import seed_everything

        config = ExperimentConfig(epochs=epochs, batch_size=8, lr=0.1, warmup_epochs=warmup)
        seed_everything(config.seed)
        model = SmallNet()
        return model, Trainer(model, config, compile=False), config

    def test_resume_is_bitwise_identical(self, tmp_path):
        """Train 2 epochs, checkpoint, diverge, restore, train 2 more: the
        resumed run matches the uninterrupted one to the last bit (params,
        buffers, momentum and schedule position all round-trip)."""
        train_set = _toy_dataset()
        ckpt = str(tmp_path / "mid")

        model_full, trainer_full, config = self._setup()
        trainer_full.fit(train_set, epochs=2)
        trainer_full.save_checkpoint(ckpt, extra={"epoch": 2})

        model_res, trainer_res, _ = self._setup()
        trainer_res.fit(train_set, epochs=1)  # diverge so restore does real work
        extra = trainer_res.load_checkpoint(ckpt)
        assert int(extra["epoch"]) == 2
        assert trainer_res.global_iteration == trainer_full.global_iteration

        history_full = trainer_full.fit(train_set, epochs=2)
        history_res = trainer_res.fit(train_set, epochs=2)
        assert history_full.train_loss == history_res.train_loss
        assert history_full.learning_rate == history_res.learning_rate
        state_full, state_res = model_full.state_dict(), model_res.state_dict()
        for name in state_full:
            np.testing.assert_array_equal(state_full[name], state_res[name], err_msg=name)

    def test_momentum_buffer_round_trips(self, tmp_path):
        train_set = _toy_dataset()
        _, trainer, _ = self._setup()
        trainer.fit(train_set, epochs=1)
        velocity = trainer.optimizer._velocity_flat.copy()
        trainer.save_checkpoint(str(tmp_path / "ck"))
        trainer.optimizer._velocity_flat.fill(0.0)
        trainer.load_checkpoint(str(tmp_path / "ck"))
        np.testing.assert_array_equal(trainer.optimizer._velocity_flat, velocity)

    def test_flat_views_stay_bound_after_load(self, tmp_path):
        _, trainer, _ = self._setup()
        trainer.fit(_toy_dataset(), epochs=1)
        trainer.save_checkpoint(str(tmp_path / "ck"))
        trainer.load_checkpoint(str(tmp_path / "ck"))
        assert trainer.optimizer.flat.check_bound()

    def test_ema_shadow_round_trips(self, tmp_path):
        from repro.optim import ModelEMA

        model, trainer, _ = self._setup(warmup=0)
        ema = ModelEMA(model, decay=0.9)
        trainer.fit(_toy_dataset(), epochs=1)
        ema.update(model)
        shadow = {k: v.copy() for k, v in ema.shadow.items()}
        trainer.save_checkpoint(str(tmp_path / "ck"), ema=ema)
        for value in ema.shadow.values():
            value.fill(0.0)
        trainer.load_checkpoint(str(tmp_path / "ck"), ema=ema)
        for name, value in shadow.items():
            np.testing.assert_array_equal(ema.shadow[name], value, err_msg=name)
        assert ema.updates == 1


class TestAutoCompile:
    def test_auto_picks_a_path_and_matches_fixed_paths(self):
        """compile='auto' races eager vs compiled on the first batch; because
        the two are bit-identical the choice never changes the trajectory."""
        from repro.utils.seed import seed_everything

        train_set = _toy_dataset()
        config = ExperimentConfig(epochs=2, batch_size=8, lr=0.1, warmup_epochs=0)

        def run(compile_mode):
            seed_everything(config.seed)
            model = SmallNet()
            trainer = Trainer(model, config, compile=compile_mode)
            history = trainer.fit(train_set)
            return model.state_dict(), history, trainer

        state_eager, history_eager, _ = run(False)
        state_auto, history_auto, trainer_auto = run("auto")
        assert trainer_auto.auto_choice in ("eager", "compiled")
        assert history_eager.train_loss == history_auto.train_loss
        for name in state_eager:
            np.testing.assert_array_equal(state_eager[name], state_auto[name], err_msg=name)

    def test_auto_calibration_is_side_effect_free(self):
        """The timing race must not perturb BN stats, dropout RNG or grads."""
        from repro.utils.seed import seed_everything

        config = ExperimentConfig(epochs=1, batch_size=8, lr=0.1, warmup_epochs=0)
        train_set = _toy_dataset()
        loader_batch = train_set.images[:8], train_set.labels[:8]

        seed_everything(config.seed)
        model_a = SmallNet()
        trainer_a = Trainer(model_a, config, compile=False)
        trainer_a.train_step(*loader_batch)

        seed_everything(config.seed)
        model_b = SmallNet()
        trainer_b = Trainer(model_b, config, compile="auto")
        trainer_b.train_step(*loader_batch)

        state_a, state_b = model_a.state_dict(), model_b.state_dict()
        for name in state_a:
            np.testing.assert_array_equal(state_a[name], state_b[name], err_msg=name)

    def test_auto_falls_back_to_eager_when_uncompilable(self):
        class WeirdLoss:
            def __call__(self, model, images, labels):
                from repro.nn import functional as F

                logits = model(images)
                return F.cross_entropy(logits, labels) * 1.0, logits

        config = ExperimentConfig(epochs=1, batch_size=8, lr=0.1, warmup_epochs=0)
        model = SmallNet()
        trainer = Trainer(model, config, compile="auto", loss_computer=WeirdLoss())
        train_set = _toy_dataset(n=8)
        trainer.train_step(train_set.images[:8], train_set.labels[:8])
        assert trainer.auto_choice in ("eager", "compiled")
