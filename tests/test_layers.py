"""Unit tests for the layer modules (Conv2d, Linear, BatchNorm2d, pooling)."""

import numpy as np
import pytest

from repro import nn


class TestConv2d:
    def test_output_shape(self):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1)
        out = conv(nn.Tensor(np.zeros((2, 3, 16, 16), dtype=np.float32)))
        assert out.shape == (2, 8, 8, 8)

    def test_depthwise_groups(self):
        conv = nn.Conv2d(6, 6, 3, padding=1, groups=6)
        assert conv.weight.shape == (6, 1, 3, 3)
        out = conv(nn.Tensor(np.zeros((1, 6, 5, 5), dtype=np.float32)))
        assert out.shape == (1, 6, 5, 5)

    def test_bias_optional(self):
        assert nn.Conv2d(3, 4, 1, bias=False).bias is None
        assert nn.Conv2d(3, 4, 1, bias=True).bias is not None

    def test_invalid_groups_raises(self):
        with pytest.raises(ValueError):
            nn.Conv2d(3, 4, 1, groups=2)

    def test_parameters_registered(self):
        conv = nn.Conv2d(3, 4, 3)
        names = dict(conv.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_gradient_flows_to_weight(self):
        conv = nn.Conv2d(2, 3, 3, padding=1)
        out = conv(nn.Tensor(np.random.rand(1, 2, 4, 4).astype(np.float32)))
        (out * out).sum().backward()
        assert conv.weight.grad is not None
        assert conv.weight.grad.shape == conv.weight.shape


class TestLinear:
    def test_forward_matches_matmul(self, rng):
        layer = nn.Linear(5, 3)
        x = rng.normal(size=(4, 5)).astype(np.float32)
        out = layer(nn.Tensor(x))
        expected = x @ layer.weight.numpy().T + layer.bias.numpy()
        np.testing.assert_allclose(out.numpy(), expected, rtol=1e-5, atol=1e-6)

    def test_no_bias(self):
        layer = nn.Linear(5, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1


class TestBatchNorm2d:
    def test_running_stats_update_only_in_training(self, rng):
        bn = nn.BatchNorm2d(4)
        x = nn.Tensor(rng.normal(3.0, 2.0, size=(8, 4, 5, 5)).astype(np.float32))
        bn.eval()
        bn(x)
        np.testing.assert_allclose(bn.running_mean, np.zeros(4))
        bn.train()
        bn(x)
        assert np.abs(bn.running_mean).sum() > 0

    def test_eval_after_training_approximates_normalisation(self, rng):
        bn = nn.BatchNorm2d(3, momentum=0.5)
        x = nn.Tensor(rng.normal(1.0, 2.0, size=(16, 3, 6, 6)).astype(np.float32))
        for _ in range(20):
            bn(x)
        bn.eval()
        out = bn(x).numpy()
        assert abs(out.mean()) < 0.2
        assert abs(out.std() - 1.0) < 0.2

    def test_state_dict_contains_buffers(self):
        bn = nn.BatchNorm2d(4)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state


class TestPoolingAndMisc:
    def test_avg_pool_module(self):
        pool = nn.AvgPool2d(2)
        out = pool(nn.Tensor(np.ones((1, 2, 4, 4), dtype=np.float32)))
        np.testing.assert_allclose(out.numpy(), np.ones((1, 2, 2, 2)))

    def test_max_pool_module(self):
        pool = nn.MaxPool2d(2, stride=2)
        x = np.zeros((1, 1, 4, 4), dtype=np.float32)
        x[0, 0, 0, 0] = 5.0
        out = pool(nn.Tensor(x))
        assert out.numpy()[0, 0, 0, 0] == 5.0

    def test_global_avg_pool_and_flatten(self):
        model = nn.Sequential(nn.GlobalAvgPool2d(), nn.Flatten())
        out = model(nn.Tensor(np.ones((2, 7, 3, 3), dtype=np.float32)))
        assert out.shape == (2, 7)

    def test_dropout_respects_training_flag(self):
        drop = nn.Dropout(0.9, seed=0)
        x = nn.Tensor(np.ones((10, 10), dtype=np.float32))
        drop.eval()
        np.testing.assert_allclose(drop(x).numpy(), x.numpy())
        drop.train()
        assert (drop(x).numpy() == 0).any()
