"""Unit tests for NetBooster Step 2: Progressive Linearization Tuning."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    ExpansionConfig,
    PLTSchedule,
    collect_decayable_activations,
    expand_network,
)
from repro.models import mobilenet_v2


def _giant(fraction=0.5):
    model = mobilenet_v2("tiny", num_classes=8)
    return expand_network(model, ExpansionConfig(fraction=fraction))


class TestCollectActivations:
    def test_collects_only_expanded_activations(self):
        giant, records = _giant()
        activations = collect_decayable_activations(giant)
        # Inverted-residual expanded blocks contain two decayable activations each.
        assert len(activations) == 2 * len(records)

    def test_expanded_only_false_collects_everything(self):
        model = nn.Sequential(nn.DecayableReLU(), nn.Conv2d(3, 3, 1), nn.DecayableReLU())
        assert len(collect_decayable_activations(model, expanded_only=False)) == 2
        assert len(collect_decayable_activations(model, expanded_only=True)) == 0

    def test_no_duplicates(self):
        giant, _ = _giant()
        activations = collect_decayable_activations(giant)
        assert len({id(a) for a in activations}) == len(activations)


class TestPLTSchedule:
    def test_alpha_starts_at_zero_and_reaches_one(self):
        giant, _ = _giant()
        schedule = PLTSchedule(giant, total_steps=10)
        assert schedule.alpha == 0.0
        for _ in range(10):
            schedule.step()
        assert schedule.alpha == pytest.approx(1.0)
        assert schedule.finished
        assert all(act.is_linear for act in schedule.activations)

    def test_alpha_increases_uniformly_per_iteration(self):
        giant, _ = _giant()
        schedule = PLTSchedule(giant, total_steps=4)
        alphas = [schedule.step() for _ in range(4)]
        np.testing.assert_allclose(alphas, [0.25, 0.5, 0.75, 1.0])

    def test_steps_beyond_total_are_clamped(self):
        giant, _ = _giant()
        schedule = PLTSchedule(giant, total_steps=2)
        for _ in range(5):
            schedule.step()
        assert schedule.alpha == 1.0

    def test_all_activations_share_alpha(self):
        giant, _ = _giant()
        schedule = PLTSchedule(giant, total_steps=5)
        schedule.step()
        alphas = {act.alpha for act in schedule.activations}
        assert len(alphas) == 1

    def test_initial_alpha(self):
        giant, _ = _giant()
        schedule = PLTSchedule(giant, total_steps=10, initial_alpha=0.5)
        assert schedule.alpha == 0.5
        schedule.step()
        assert schedule.alpha == pytest.approx(0.55)

    def test_finalize_forces_linearity(self):
        giant, _ = _giant()
        schedule = PLTSchedule(giant, total_steps=1000)
        schedule.step()
        assert not schedule.finished
        schedule.finalize()
        assert schedule.finished
        assert all(act.is_linear for act in schedule.activations)

    def test_invalid_arguments(self):
        giant, _ = _giant()
        with pytest.raises(ValueError):
            PLTSchedule(giant, total_steps=0)
        with pytest.raises(ValueError):
            PLTSchedule(giant, total_steps=5, initial_alpha=1.0)

    def test_decay_changes_model_function_gradually(self):
        giant, _ = _giant()
        giant.eval()
        x = nn.Tensor(np.random.rand(2, 3, 24, 24).astype(np.float32))
        schedule = PLTSchedule(giant, total_steps=5)
        baseline = giant(x).numpy()
        deltas = []
        for _ in range(5):
            schedule.step()
            deltas.append(np.abs(giant(x).numpy() - baseline).max())
        # The function drifts monotonically away from the alpha=0 output.
        assert deltas[0] <= deltas[-1]
        assert deltas[-1] > 0
