"""Tests for the fused inference runtime and the stride-trick conv core."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.models import create_model
from repro.models.blocks import BasicBlock, Bottleneck, ConvBNAct, InvertedResidual
from repro.runtime import CompiledNet, compile_net, fold_conv_bn


def _randomize_bn_stats(model: nn.Module, rng: np.random.Generator) -> None:
    """Give every BatchNorm non-trivial running statistics so folding is exercised."""
    for _, module in model.named_modules():
        if isinstance(module, nn.BatchNorm2d):
            module.running_mean[...] = rng.normal(0.0, 0.2, size=module.num_features)
            module.running_var[...] = rng.uniform(0.5, 1.5, size=module.num_features)


class TestIm2ColEquivalence:
    """The zero-copy im2col must match the seed's copy-based reference."""

    @pytest.mark.parametrize(
        "kernel,stride,padding",
        [((3, 3), 1, 0), ((3, 3), 1, 1), ((3, 3), 2, 1), ((5, 5), 2, 2), ((1, 1), 1, 0), ((2, 2), 2, 0)],
    )
    def test_matches_reference(self, rng, kernel, stride, padding):
        x = rng.normal(size=(2, 3, 9, 9))
        fast = F.im2col(x, kernel, stride, padding)
        reference = F.im2col_reference(x, kernel, stride, padding)
        assert fast.shape == reference.shape
        np.testing.assert_allclose(np.asarray(fast), reference)

    def test_zero_copy_view(self, rng):
        x = rng.normal(size=(1, 2, 6, 6))
        cols = F.im2col(x, (3, 3), stride=1, padding=0)
        assert cols.base is not None  # a view, not a materialised buffer

    @pytest.mark.parametrize("stride,padding,groups", [(1, 1, 1), (2, 1, 2), (1, 0, 4), (2, 2, 1)])
    def test_conv2d_matches_reference_im2col_path(self, rng, stride, padding, groups):
        """Grouped/strided/padded conv agrees with the explicit im2col formulation."""
        n, c_in, c_out, k = 2, 4, 8, 3
        x = rng.normal(size=(n, c_in, 7, 7))
        w = rng.normal(size=(c_out, c_in // groups, k, k))
        out = F.conv2d(
            nn.Tensor(x, dtype=np.float64),
            nn.Tensor(w, dtype=np.float64),
            stride=stride,
            padding=padding,
            groups=groups,
        ).numpy()
        cols = F.im2col_reference(x, (k, k), stride, padding)
        oh, ow = cols.shape[4], cols.shape[5]
        cols_mat = cols.reshape(n, groups, (c_in // groups) * k * k, oh * ow)
        w_mat = w.reshape(groups, c_out // groups, (c_in // groups) * k * k)
        expected = np.einsum("goc,ngcp->ngop", w_mat, cols_mat).reshape(n, c_out, oh, ow)
        np.testing.assert_allclose(out, expected, rtol=1e-10, atol=1e-10)


class TestBatchNormFolding:
    def test_fold_conv_bn_math(self, rng):
        w = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        b = rng.normal(size=4).astype(np.float32)
        scale = rng.uniform(0.5, 1.5, size=4).astype(np.float32)
        shift = rng.normal(size=4).astype(np.float32)
        folded_w, folded_b = fold_conv_bn(w, b, scale, shift)
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        with nn.no_grad():
            raw = F.conv2d(nn.Tensor(x), nn.Tensor(w), nn.Tensor(b), stride=1, padding=1).numpy()
            folded = F.conv2d(nn.Tensor(x), nn.Tensor(folded_w), nn.Tensor(folded_b), stride=1, padding=1).numpy()
        expected = raw * scale.reshape(1, 4, 1, 1) + shift.reshape(1, 4, 1, 1)
        np.testing.assert_allclose(folded, expected, rtol=1e-4, atol=1e-5)

    def test_fold_without_bias_uses_shift(self):
        w = np.ones((2, 1, 1, 1), dtype=np.float32)
        folded_w, folded_b = fold_conv_bn(w, None, np.array([2.0, 3.0], np.float32), np.array([1.0, -1.0], np.float32))
        np.testing.assert_allclose(folded_w[:, 0, 0, 0], [2.0, 3.0])
        np.testing.assert_allclose(folded_b, [1.0, -1.0])


class TestCompiledNet:
    @pytest.mark.parametrize("name", ["mobilenetv2-tiny", "mcunet"])
    def test_compiled_matches_eager_model(self, rng, name):
        model = create_model(name, num_classes=8)
        _randomize_bn_stats(model, rng)
        model.eval()
        x = rng.normal(size=(4, 3, 20, 20)).astype(np.float32)
        with nn.no_grad():
            eager = model(nn.Tensor(x)).numpy()
        net = compile_net(model)
        assert isinstance(net, CompiledNet)
        compiled = net.numpy_forward(x)
        np.testing.assert_allclose(compiled, eager, rtol=1e-4, atol=1e-4)

    @pytest.mark.parametrize(
        "in_channels,block",
        [
            (3, lambda: ConvBNAct(3, 8, kernel_size=3, stride=2)),
            (6, lambda: InvertedResidual(6, 6, stride=1, expand_ratio=4)),  # residual path
            (6, lambda: InvertedResidual(6, 8, stride=2, expand_ratio=1, kernel_size=5)),
            (5, lambda: BasicBlock(5, 5)),
            (8, lambda: Bottleneck(8, 8)),
        ],
    )
    def test_compiled_blocks_match_eager(self, rng, in_channels, block):
        module = block()
        _randomize_bn_stats(module, rng)
        module.eval()
        x = rng.normal(size=(2, in_channels, 12, 12)).astype(np.float32)
        with nn.no_grad():
            eager = module(nn.Tensor(x)).numpy()
        compiled = compile_net(module).numpy_forward(x)
        np.testing.assert_allclose(compiled, eager, rtol=1e-4, atol=1e-4)

    def test_decayable_activations_supported(self, rng):
        """PLT-annealed giants (leaky / interpolated ReLU6) compile exactly."""
        block = ConvBNAct(3, 6, kernel_size=3)
        block.act = nn.DecayableReLU6(alpha=0.4)
        _randomize_bn_stats(block, rng)
        block.eval()
        x = rng.normal(size=(2, 3, 10, 10)).astype(np.float32)
        with nn.no_grad():
            eager = block(nn.Tensor(x)).numpy()
        compiled = compile_net(block).numpy_forward(x)
        np.testing.assert_allclose(compiled, eager, rtol=1e-4, atol=1e-4)

    def test_unknown_module_falls_back_to_eager(self, rng):
        class Odd(nn.Module):
            def __init__(self):
                super().__init__()
                self.linear = nn.Linear(6, 4)

            def forward(self, x):
                return self.linear(x).tanh() * 2.0

        model = Odd()
        x = rng.normal(size=(3, 6)).astype(np.float32)
        with nn.no_grad():
            eager = model(nn.Tensor(x)).numpy()
        compiled = compile_net(model).numpy_forward(x)
        np.testing.assert_allclose(compiled, eager, rtol=1e-5, atol=1e-6)

    def test_accepts_tensor_and_returns_detached_tensor(self, rng):
        model = create_model("mobilenetv2-tiny", num_classes=4)
        model.eval()
        net = compile_net(model)
        out = net(nn.Tensor(rng.normal(size=(1, 3, 16, 16)).astype(np.float32)))
        assert isinstance(out, nn.Tensor)
        assert not out.requires_grad

    def test_residual_does_not_clobber_input(self, rng):
        block = InvertedResidual(6, 6, stride=1, expand_ratio=2)
        block.eval()
        x = rng.normal(size=(1, 6, 8, 8)).astype(np.float32)
        x_before = x.copy()
        compile_net(block).numpy_forward(x)
        np.testing.assert_array_equal(x, x_before)

    def test_compiled_evaluate_matches_eager_evaluate(self, rng):
        from repro.data import ClassificationDataset
        from repro.train import evaluate

        model = create_model("mobilenetv2-tiny", num_classes=3)
        _randomize_bn_stats(model, rng)
        images = rng.normal(size=(30, 3, 16, 16)).astype(np.float32)
        labels = np.arange(30) % 3
        dataset = ClassificationDataset(images, labels, 3)
        assert evaluate(model, dataset, compiled=True) == evaluate(model, dataset, compiled=False)
