"""Unit tests for the simulated int-N quantization toolkit."""

import numpy as np
import pytest

from repro import nn
from repro.compress import (
    QuantizationSpec,
    QuantizedConv2d,
    QuantizedLinear,
    activation_qparams,
    calibrate,
    dequantize_array,
    quantize_array,
    quantize_model,
)
from repro.compress.quantization import fake_quantize, quantization_error
from repro.models import mobilenet_v2
from repro.train import evaluate


class TestQuantizeArray:
    def test_round_trip_error_bounded_by_step(self, rng):
        array = rng.normal(size=(16, 8)).astype(np.float32)
        spec = QuantizationSpec(bits=8, symmetric=True, per_channel=False)
        q, scale, zero_point = quantize_array(array, spec)
        restored = dequantize_array(q, scale, zero_point)
        assert np.max(np.abs(array - restored)) <= scale[0] * 0.5 + 1e-7

    def test_symmetric_grid_has_zero_zero_point(self, rng):
        array = rng.normal(size=32).astype(np.float32)
        _, _, zero_point = quantize_array(array, QuantizationSpec(symmetric=True, per_channel=False))
        np.testing.assert_allclose(zero_point, 0.0)

    def test_affine_grid_covers_asymmetric_range(self):
        array = np.linspace(0.0, 10.0, 100).astype(np.float32)  # post-ReLU style
        spec = QuantizationSpec(bits=8, symmetric=False, per_channel=False)
        q, scale, zero_point = quantize_array(array, spec)
        assert q.min() >= spec.qmin and q.max() <= spec.qmax
        restored = dequantize_array(q, scale, zero_point)
        np.testing.assert_allclose(restored, array, atol=float(scale[0]))

    def test_per_channel_beats_per_tensor_on_mixed_scales(self, rng):
        # One output channel is 100x larger than the other: a single scale wastes
        # most of the grid on it.
        weights = np.stack([rng.normal(size=64), 100.0 * rng.normal(size=64)]).astype(np.float32)
        per_tensor = quantization_error(weights, QuantizationSpec(bits=4, per_channel=False), None)
        per_channel = quantization_error(weights, QuantizationSpec(bits=4, per_channel=True), 0)
        assert per_channel < per_tensor

    def test_more_bits_reduce_error(self, rng):
        array = rng.normal(size=256).astype(np.float32)
        errors = [
            quantization_error(array, QuantizationSpec(bits=bits, per_channel=False), None)
            for bits in (2, 4, 8)
        ]
        assert errors[0] > errors[1] > errors[2]

    def test_invalid_bit_width_rejected(self):
        with pytest.raises(ValueError):
            QuantizationSpec(bits=1)

    def test_fake_quantize_idempotent(self, rng):
        array = rng.normal(size=64).astype(np.float32)
        spec = QuantizationSpec(bits=8, per_channel=False)
        once = fake_quantize(array, spec)
        twice = fake_quantize(once, spec)
        np.testing.assert_allclose(once, twice, atol=1e-6)


class TestQuantizedModel:
    def _data(self, rng, n=8, classes=4, size=16):
        images = rng.normal(0.0, 1.0, size=(n, 3, size, size)).astype(np.float32)
        return images

    def test_quantize_model_wraps_all_conv_and_linear(self):
        model = mobilenet_v2("tiny", num_classes=4)
        report = quantize_model(model)
        wrapped = [m for _, m in model.named_modules() if isinstance(m, (QuantizedConv2d, QuantizedLinear))]
        assert report.quantized_layers == len(wrapped)
        assert report.quantized_layers > 10
        assert report.mean_weight_rmse > 0.0

    def test_skip_prefix_leaves_layers_untouched(self):
        model = mobilenet_v2("tiny", num_classes=4)
        quantize_model(model, skip=("classifier",))
        assert isinstance(model.classifier, nn.Linear)

    def test_int8_accuracy_close_to_float(self, rng):
        from repro.data import ClassificationDataset

        images = rng.normal(0.3, 0.2, size=(32, 3, 16, 16)).astype(np.float32)
        labels = np.arange(32) % 4
        for i, label in enumerate(labels):
            images[i, 0] += 0.4 * label
        dataset = ClassificationDataset(images, labels, 4)
        model = mobilenet_v2("tiny", num_classes=4)
        float_accuracy = evaluate(model, dataset)
        quantize_model(model, QuantizationSpec(bits=8))
        calibrate(model, [images[:8]])
        int8_accuracy = evaluate(model, dataset)
        assert abs(float_accuracy - int8_accuracy) <= 15.0

    def test_calibration_requires_quantized_model(self):
        with pytest.raises(ValueError):
            calibrate(mobilenet_v2("tiny", num_classes=4), [])

    def test_calibrate_counts_batches_and_freezes(self, rng):
        model = mobilenet_v2("tiny", num_classes=4)
        quantize_model(model)
        batches = [self._data(rng, n=2) for _ in range(3)]
        count = calibrate(model, batches)
        assert count == 3
        wrappers = [m for _, m in model.named_modules() if isinstance(m, QuantizedConv2d)]
        assert all(not w.observing for w in wrappers)
        assert all(np.isfinite(w.act_low[0]) and np.isfinite(w.act_high[0]) for w in wrappers)

    def test_forward_shape_unchanged_after_quantization(self, rng):
        model = mobilenet_v2("tiny", num_classes=7)
        x = nn.Tensor(self._data(rng, n=2))
        before = model(x).shape
        quantize_model(model)
        calibrate(model, [self._data(rng, n=2)])
        after = model(nn.Tensor(self._data(rng, n=2))).shape
        assert before == after == (2, 7)

    def test_wrapper_quantizes_weights_at_construction(self, rng):
        conv = nn.Conv2d(3, 4, 3)
        original = conv.weight.data.copy()
        wrapper = QuantizedConv2d(conv, QuantizationSpec(bits=4))
        assert not np.allclose(wrapper.wrapped.weight.data, original)
        assert len(np.unique(wrapper.wrapped.weight.data[0])) <= 2 ** 4

    def test_wrapper_stores_real_integer_parameters(self):
        conv = nn.Conv2d(3, 4, 3)
        wrapper = QuantizedConv2d(conv, QuantizationSpec())
        assert wrapper.weight_q.dtype == np.int8
        scale = np.asarray(wrapper.weight_scale).reshape(-1, 1, 1, 1)
        np.testing.assert_allclose(
            wrapper.weight_q.astype(np.float32) * scale,
            wrapper.wrapped.weight.data,
            rtol=1e-5,
            atol=1e-6,
        )

    def test_input_qparams_only_after_calibration(self, rng):
        conv = nn.Conv2d(3, 4, 3)
        wrapper = QuantizedConv2d(conv, QuantizationSpec())
        assert wrapper.input_qparams() is None
        assert not wrapper.frozen
        wrapper._observe(rng.normal(size=(2, 3, 8, 8)).astype(np.float32))
        wrapper.freeze()
        scale, zero_point = wrapper.input_qparams()
        assert scale > 0 and zero_point == int(zero_point)
        assert wrapper.frozen


class TestActivationQParams:
    def test_zero_is_exactly_representable(self):
        for low, high in [(-1.5, 3.0), (0.2, 4.0), (-3.0, -0.1)]:
            scale, zero_point = activation_qparams(low, high)
            assert zero_point == int(zero_point)
            assert 0 <= zero_point <= 255
            # dequantize(zero_point) == 0 exactly
            assert (zero_point - zero_point) * scale == 0.0

    def test_range_nudged_to_include_zero(self):
        scale, zero_point = activation_qparams(1.0, 3.0)  # all-positive range
        assert zero_point == 0.0  # low nudged to 0
        assert scale == pytest.approx(3.0 / 255)


class TestPercentileCalibration:
    def _model_and_batches(self, rng, outlier=False):
        model = mobilenet_v2("tiny", num_classes=4)
        model.eval()
        quantize_model(model)
        batches = [rng.normal(0.2, 0.5, size=(8, 3, 16, 16)).astype(np.float32) for _ in range(2)]
        if outlier:
            batches[0][0, 0, 0, 0] = 500.0  # single wild outlier
        return model, batches

    def test_percentile_tightens_ranges_against_outliers(self, rng):
        model_mm, batches = self._model_and_batches(rng, outlier=True)
        calibrate(model_mm, batches, method="minmax")
        model_pc = mobilenet_v2("tiny", num_classes=4)
        model_pc.eval()
        quantize_model(model_pc)
        calibrate(model_pc, batches, method="percentile", percentile=99.5)
        first_mm = next(m for _, m in model_mm.named_modules() if isinstance(m, QuantizedConv2d))
        first_pc = next(m for _, m in model_pc.named_modules() if isinstance(m, QuantizedConv2d))
        range_mm = float(first_mm.act_high[0] - first_mm.act_low[0])
        range_pc = float(first_pc.act_high[0] - first_pc.act_low[0])
        assert range_pc < range_mm / 10  # outlier stretched minmax, not percentile

    def test_percentile_improves_accuracy_under_outliers(self, rng):
        """With a contaminated calibration set, percentile calibration keeps
        the quantized model measurably closer to the float model."""
        images = rng.normal(0.3, 0.2, size=(48, 3, 16, 16)).astype(np.float32)
        labels = np.arange(48) % 4
        for i, label in enumerate(labels):
            images[i, 0] += 0.5 * label
        reference = mobilenet_v2("tiny", num_classes=4)
        reference.eval()
        with nn.no_grad():
            float_out = reference(nn.Tensor(images)).numpy()

        def quantized_mse(method):
            model = mobilenet_v2("tiny", num_classes=4)
            model.eval()
            model.load_state_dict(reference.state_dict())
            quantize_model(model)
            calib = [images[:8].copy()]
            calib[0][0, 0, 0, 0] = 80.0  # one wild sensor-glitch pixel
            calibrate(model, calib, method=method, percentile=99.9)
            with nn.no_grad():
                out = model(nn.Tensor(images)).numpy()
            return float(np.mean((out - float_out) ** 2))

        assert quantized_mse("percentile") < quantized_mse("minmax")

    def test_unknown_method_rejected(self, rng):
        model = mobilenet_v2("tiny", num_classes=4)
        quantize_model(model)
        with pytest.raises(ValueError):
            calibrate(model, [], method="median")

    def test_percentile_never_widens_beyond_observed(self, rng):
        model = mobilenet_v2("tiny", num_classes=4)
        model.eval()
        quantize_model(model)
        batches = [rng.normal(0.0, 1.0, size=(4, 3, 16, 16)).astype(np.float32)]
        calibrate(model, batches, method="percentile", percentile=100.0)
        for _, module in model.named_modules():
            if isinstance(module, QuantizedConv2d):
                assert np.isfinite(module.act_low[0]) and np.isfinite(module.act_high[0])
                assert module.act_low[0] <= module.act_high[0]
