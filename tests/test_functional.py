"""Unit tests for convolution, pooling, batch norm and loss primitives."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor

from helpers import assert_gradients_close, make_tensor, numerical_gradient


class TestIm2Col:
    def test_roundtrip_shapes(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols = F.im2col(x, (3, 3), stride=1, padding=1)
        assert cols.shape == (2, 3, 3, 3, 8, 8)

    def test_col2im_adjoint_property(self, rng):
        """col2im is the transpose of im2col: <im2col(x), y> == <x, col2im(y)>."""
        x = rng.normal(size=(1, 2, 6, 6))
        cols = F.im2col(x, (3, 3), stride=2, padding=1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * F.col2im(y, x.shape, (3, 3), stride=2, padding=1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_output_size_helper(self):
        assert F.conv_output_size(24, 3, 2, 1) == 12
        assert F.conv_output_size(24, 1, 1, 0) == 24


class TestConv2d:
    @pytest.mark.parametrize("stride,padding,groups", [(1, 0, 1), (2, 1, 1), (1, 1, 2)])
    def test_matches_naive_convolution(self, rng, stride, padding, groups):
        x = rng.normal(size=(2, 4, 7, 7))
        w = rng.normal(size=(6, 4 // groups, 3, 3))
        out = F.conv2d(Tensor(x, dtype=np.float64), Tensor(w, dtype=np.float64), stride=stride, padding=padding, groups=groups)

        # Naive reference implementation.
        xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
        oh = F.conv_output_size(7, 3, stride, padding)
        expected = np.zeros((2, 6, oh, oh))
        in_per_group = 4 // groups
        out_per_group = 6 // groups
        for n in range(2):
            for o in range(6):
                g = o // out_per_group
                for i in range(oh):
                    for j in range(oh):
                        patch = xp[n, g * in_per_group : (g + 1) * in_per_group, i * stride : i * stride + 3, j * stride : j * stride + 3]
                        expected[n, o, i, j] = (patch * w[o]).sum()
        np.testing.assert_allclose(out.numpy(), expected, rtol=1e-6)

    def test_gradients_full_and_depthwise(self, rng):
        for groups in (1, 3):
            x = make_tensor((2, 3, 6, 6), rng)
            w = make_tensor((3, 3 // groups, 3, 3), rng)
            b = make_tensor((3,), rng)
            out = F.conv2d(x, w, b, stride=1, padding=1, groups=groups)
            (out * out).sum().backward()

            def f():
                return float(
                    (F.conv2d(Tensor(x.data, dtype=np.float64), Tensor(w.data, dtype=np.float64), Tensor(b.data, dtype=np.float64), 1, 1, groups).data ** 2).sum()
                )

            assert_gradients_close(x.grad, numerical_gradient(f, x.data))
            assert_gradients_close(w.grad, numerical_gradient(f, w.data))
            assert_gradients_close(b.grad, numerical_gradient(f, b.data))

    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 0), (1, 1), (2, 1)])
    def test_pointwise_fast_path_gradients(self, rng, stride, padding):
        """The 1x1 matmul fast path must match numerical gradients."""
        x = make_tensor((2, 3, 6, 6), rng)
        w = make_tensor((4, 3, 1, 1), rng)
        b = make_tensor((4,), rng)
        out = F.conv2d(x, w, b, stride=stride, padding=padding)
        (out * out).sum().backward()

        def f():
            return float(
                (F.conv2d(Tensor(x.data, dtype=np.float64), Tensor(w.data, dtype=np.float64), Tensor(b.data, dtype=np.float64), stride, padding).data ** 2).sum()
            )

        assert_gradients_close(x.grad, numerical_gradient(f, x.data))
        assert_gradients_close(w.grad, numerical_gradient(f, w.data))
        assert_gradients_close(b.grad, numerical_gradient(f, b.data))

    def test_channel_mismatch_raises(self):
        x = Tensor(np.zeros((1, 3, 4, 4)))
        w = Tensor(np.zeros((2, 4, 1, 1)))
        with pytest.raises(ValueError):
            F.conv2d(x, w)

    def test_pointwise_conv_equals_matmul(self, rng):
        x = rng.normal(size=(2, 5, 4, 4)).astype(np.float32)
        w = rng.normal(size=(7, 5, 1, 1)).astype(np.float32)
        out = F.conv2d(Tensor(x), Tensor(w))
        expected = np.einsum("oc,nchw->nohw", w[:, :, 0, 0], x)
        np.testing.assert_allclose(out.numpy(), expected, rtol=1e-5, atol=1e-5)


class TestPooling:
    def test_avg_pool_values(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = F.avg_pool2d(x, 2)
        np.testing.assert_allclose(out.numpy(), [[[[2.5, 4.5], [10.5, 12.5]]]])

    def test_max_pool_values_and_gradient(self):
        x = Tensor(np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4), requires_grad=True)
        out = F.max_pool2d(x, 2)
        np.testing.assert_allclose(out.numpy(), [[[[5, 7], [13, 15]]]])
        out.sum().backward()
        assert x.grad.sum() == 4
        assert x.grad[0, 0, 1, 1] == 1

    def test_pool_gradients_match_numeric(self, rng):
        for pool in (F.avg_pool2d, F.max_pool2d):
            x = make_tensor((2, 2, 6, 6), rng)
            (pool(x, 2) ** 2).sum().backward()

            def f():
                return float((pool(Tensor(x.data, dtype=np.float64), 2).data ** 2).sum())

            assert_gradients_close(x.grad, numerical_gradient(f, x.data))

    @pytest.mark.parametrize("stride,padding", [(2, 0), (2, 1), (3, 1)])
    def test_strided_padded_pool_gradients(self, rng, stride, padding):
        """Overlapping/strided/padded windows through the slice-based backward."""
        for pool in (F.avg_pool2d, F.max_pool2d):
            x = make_tensor((2, 2, 7, 7), rng)
            (pool(x, 3, stride, padding) ** 2).sum().backward()

            def f():
                return float((pool(Tensor(x.data, dtype=np.float64), 3, stride, padding).data ** 2).sum())

            assert_gradients_close(x.grad, numerical_gradient(f, x.data))

    def test_global_avg_pool_shape(self, rng):
        x = make_tensor((2, 5, 6, 6), rng)
        assert F.global_avg_pool2d(x).shape == (2, 5, 1, 1)


class TestBatchNorm:
    def test_training_normalises_batch(self, rng):
        x = Tensor(rng.normal(2.0, 3.0, size=(8, 4, 5, 5)), dtype=np.float64, requires_grad=True)
        gamma = Tensor(np.ones(4), requires_grad=True, dtype=np.float64)
        beta = Tensor(np.zeros(4), requires_grad=True, dtype=np.float64)
        running_mean = np.zeros(4)
        running_var = np.ones(4)
        out = F.batch_norm2d(x, gamma, beta, running_mean, running_var, training=True)
        np.testing.assert_allclose(out.numpy().mean(axis=(0, 2, 3)), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.numpy().std(axis=(0, 2, 3)), 1.0, atol=1e-3)
        # Running stats moved towards the batch statistics.
        assert np.all(running_mean != 0.0)

    def test_eval_uses_running_statistics(self, rng):
        x = Tensor(rng.normal(size=(4, 3, 2, 2)), dtype=np.float64)
        gamma = Tensor(np.ones(3), dtype=np.float64)
        beta = Tensor(np.zeros(3), dtype=np.float64)
        mean = np.array([1.0, 2.0, 3.0])
        var = np.array([4.0, 4.0, 4.0])
        out = F.batch_norm2d(x, gamma, beta, mean, var, training=False)
        expected = (x.numpy() - mean.reshape(1, 3, 1, 1)) / np.sqrt(var.reshape(1, 3, 1, 1) + 1e-5)
        np.testing.assert_allclose(out.numpy(), expected, rtol=1e-6)

    def test_training_gradients_match_numeric(self, rng):
        x = make_tensor((4, 2, 3, 3), rng)
        gamma = make_tensor((2,), rng)
        beta = make_tensor((2,), rng)

        def forward(xv, gv, bv):
            return F.batch_norm2d(
                Tensor(xv, dtype=np.float64), Tensor(gv, dtype=np.float64), Tensor(bv, dtype=np.float64),
                np.zeros(2), np.ones(2), training=True,
            )

        out = F.batch_norm2d(x, gamma, beta, np.zeros(2), np.ones(2), training=True)
        (out * out).sum().backward()

        def f():
            return float((forward(x.data, gamma.data, beta.data).data ** 2).sum())

        assert_gradients_close(x.grad, numerical_gradient(f, x.data), atol=1e-4)
        assert_gradients_close(gamma.grad, numerical_gradient(f, gamma.data), atol=1e-4)
        assert_gradients_close(beta.grad, numerical_gradient(f, beta.data), atol=1e-4)


class TestLosses:
    def test_softmax_sums_to_one(self, rng):
        logits = make_tensor((5, 7), rng)
        probs = F.softmax(logits)
        np.testing.assert_allclose(probs.numpy().sum(axis=1), np.ones(5), rtol=1e-6)

    def test_log_softmax_consistent_with_softmax(self, rng):
        logits = make_tensor((5, 7), rng)
        np.testing.assert_allclose(
            F.log_softmax(logits).numpy(), np.log(F.softmax(logits).numpy()), rtol=1e-5, atol=1e-6
        )

    def test_cross_entropy_perfect_prediction_is_near_zero(self):
        logits = Tensor(np.array([[20.0, 0.0, 0.0], [0.0, 20.0, 0.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_cross_entropy_uniform_logits_is_log_c(self):
        logits = Tensor(np.zeros((4, 8)))
        loss = F.cross_entropy(logits, np.array([0, 1, 2, 3]))
        assert loss.item() == pytest.approx(np.log(8), rel=1e-5)

    def test_cross_entropy_gradient(self, rng):
        logits = make_tensor((6, 4), rng)
        labels = np.array([0, 1, 2, 3, 0, 1])
        F.cross_entropy(logits, labels).backward()

        def f():
            return float(F.cross_entropy(Tensor(logits.data, dtype=np.float64), labels).data)

        assert_gradients_close(logits.grad, numerical_gradient(f, logits.data))

    def test_label_smoothing_increases_loss_of_confident_prediction(self):
        logits = Tensor(np.array([[15.0, 0.0, 0.0]]))
        plain = F.cross_entropy(logits, np.array([0]))
        smoothed = F.cross_entropy(logits, np.array([0]), label_smoothing=0.2)
        assert smoothed.item() > plain.item()

    def test_soft_target_cross_entropy(self):
        logits = Tensor(np.array([[1.0, 2.0, 0.5]]))
        targets = np.array([[0.2, 0.5, 0.3]], dtype=np.float32)
        loss = F.cross_entropy(logits, targets, soft_targets=True)
        log_probs = np.log(np.exp(logits.numpy()) / np.exp(logits.numpy()).sum())
        assert loss.item() == pytest.approx(float(-(targets * log_probs).sum()), rel=1e-5)

    def test_kl_divergence_zero_for_identical_distributions(self, rng):
        logits = Tensor(rng.normal(size=(4, 6)).astype(np.float32))
        loss = F.kl_divergence(logits, logits, temperature=2.0)
        assert abs(loss.item()) < 1e-5

    def test_kl_divergence_positive_and_differentiable(self, rng):
        teacher = Tensor(rng.normal(size=(4, 6)).astype(np.float32))
        student = Tensor(rng.normal(size=(4, 6)).astype(np.float32), requires_grad=True)
        loss = F.kl_divergence(teacher, student, temperature=4.0)
        assert loss.item() > 0
        loss.backward()
        assert student.grad is not None

    def test_mse_and_smooth_l1(self):
        pred = Tensor(np.array([1.0, 2.0, 5.0]), requires_grad=True)
        target = np.array([1.0, 2.0, 2.0])
        assert F.mse_loss(pred, target).item() == pytest.approx(3.0)
        smooth = F.smooth_l1_loss(pred, target)
        assert smooth.item() == pytest.approx((0 + 0 + 2.5) / 3)

    def test_bce_with_logits_matches_reference(self, rng):
        logits = Tensor(rng.normal(size=(3, 4)).astype(np.float32), requires_grad=True)
        targets = (rng.random((3, 4)) > 0.5).astype(np.float32)
        loss = F.binary_cross_entropy_with_logits(logits, targets)
        p = 1 / (1 + np.exp(-logits.numpy()))
        reference = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        assert loss.item() == pytest.approx(float(reference), rel=1e-4)
        loss.backward()
        assert logits.grad is not None

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_dropout_eval_is_identity_and_train_scales(self, rng):
        x = Tensor(np.ones((100, 100), dtype=np.float32))
        assert F.dropout(x, 0.5, training=False) is x
        out = F.dropout(x, 0.5, training=True, rng=rng)
        # Expected value is preserved by inverted dropout.
        assert out.numpy().mean() == pytest.approx(1.0, abs=0.05)
