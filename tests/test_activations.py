"""Unit tests for activation modules, especially the decayable activations."""

import numpy as np
import pytest

from repro import nn


class TestStandardActivations:
    def test_relu(self):
        out = nn.ReLU()(nn.Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.numpy(), [0.0, 2.0])

    def test_relu6_clips_both_sides(self):
        out = nn.ReLU6()(nn.Tensor(np.array([-3.0, 3.0, 9.0])))
        np.testing.assert_allclose(out.numpy(), [0.0, 3.0, 6.0])

    def test_leaky_relu(self):
        out = nn.LeakyReLU(0.1)(nn.Tensor(np.array([-10.0, 10.0])))
        np.testing.assert_allclose(out.numpy(), [-1.0, 10.0])

    def test_sigmoid_range(self, rng):
        out = nn.Sigmoid()(nn.Tensor(rng.normal(size=(10,)).astype(np.float32)))
        assert np.all(out.numpy() > 0) and np.all(out.numpy() < 1)


class TestDecayableReLU:
    def test_alpha_zero_is_relu(self, rng):
        act = nn.DecayableReLU(alpha=0.0)
        x = nn.Tensor(rng.normal(size=(20,)).astype(np.float32))
        np.testing.assert_allclose(act(x).numpy(), np.maximum(x.numpy(), 0))

    def test_alpha_one_is_identity(self, rng):
        act = nn.DecayableReLU(alpha=1.0)
        x = nn.Tensor(rng.normal(size=(20,)).astype(np.float32))
        np.testing.assert_allclose(act(x).numpy(), x.numpy())
        assert act.is_linear

    def test_intermediate_alpha_interpolates(self):
        act = nn.DecayableReLU(alpha=0.5)
        x = nn.Tensor(np.array([-2.0, 2.0]))
        np.testing.assert_allclose(act(x).numpy(), [-1.0, 2.0])
        assert not act.is_linear

    def test_monotone_in_alpha_for_negative_inputs(self):
        """As alpha grows the output decays monotonically from ReLU(x)=0 towards x."""
        x = nn.Tensor(np.array([-3.0]))
        values = []
        act = nn.DecayableReLU()
        for alpha in np.linspace(0, 1, 11):
            act.set_alpha(float(alpha))
            values.append(float(act(x).numpy()[0]))
        assert values == sorted(values, reverse=True)
        assert values[0] == 0.0 and values[-1] == -3.0

    def test_set_alpha_clamps(self):
        act = nn.DecayableReLU()
        act.set_alpha(2.0)
        assert act.alpha == 1.0
        act.set_alpha(-1.0)
        assert act.alpha == 0.0

    def test_gradient_uses_slope(self):
        act = nn.DecayableReLU(alpha=0.3)
        x = nn.Tensor(np.array([-1.0, 1.0]), requires_grad=True)
        act(x).sum().backward()
        np.testing.assert_allclose(x.grad, [0.3, 1.0])


class TestDecayableReLU6:
    def test_alpha_zero_is_relu6(self, rng):
        act = nn.DecayableReLU6(alpha=0.0)
        x = nn.Tensor(np.array([-2.0, 3.0, 8.0]))
        np.testing.assert_allclose(act(x).numpy(), [0.0, 3.0, 6.0])

    def test_alpha_one_is_identity(self):
        act = nn.DecayableReLU6(alpha=1.0)
        x = nn.Tensor(np.array([-2.0, 3.0, 8.0]))
        np.testing.assert_allclose(act(x).numpy(), [-2.0, 3.0, 8.0])

    def test_intermediate_blends_clip_and_identity(self):
        act = nn.DecayableReLU6(alpha=0.5)
        x = nn.Tensor(np.array([8.0]))
        np.testing.assert_allclose(act(x).numpy(), [7.0])

    def test_repr_shows_alpha(self):
        assert "0.250" in repr(nn.DecayableReLU(alpha=0.25))
        assert "DecayableReLU6" in repr(nn.DecayableReLU6())
