"""Unit tests for SGD and the learning-rate schedulers."""

import math

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter
from repro.optim import SGD, ConstantLR, CosineAnnealingLR, LinearWarmup, StepLR


def quadratic_loss(param: Parameter) -> nn.Tensor:
    return (param * param).sum()


class TestSGD:
    def test_plain_sgd_step(self):
        p = Parameter(np.array([1.0, -2.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, momentum=0.0)
        quadratic_loss(p).backward()
        opt.step()
        np.testing.assert_allclose(p.numpy(), [0.8, -1.6], rtol=1e-6)

    def test_momentum_accumulates_velocity(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, momentum=0.9)
        for _ in range(2):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        # Second step should move further than a momentum-free second step.
        p_ref = Parameter(np.array([1.0], dtype=np.float32))
        opt_ref = SGD([p_ref], lr=0.1, momentum=0.0)
        for _ in range(2):
            opt_ref.zero_grad()
            quadratic_loss(p_ref).backward()
            opt_ref.step()
        assert p.numpy()[0] < p_ref.numpy()[0]

    def test_weight_decay_shrinks_parameters_without_gradient_signal(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.5)
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert p.numpy()[0] == pytest.approx(0.95)

    def test_nesterov_differs_from_classical(self):
        def run(nesterov):
            p = Parameter(np.array([1.0], dtype=np.float32))
            opt = SGD([p], lr=0.1, momentum=0.9, nesterov=nesterov)
            for _ in range(3):
                opt.zero_grad()
                quadratic_loss(p).backward()
                opt.step()
            return p.numpy()[0]

        assert run(True) != run(False)

    def test_skips_parameters_without_grad(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1)
        opt.step()  # no gradient yet; should not crash or move
        assert p.numpy()[0] == 1.0

    def test_frozen_parameters_excluded(self):
        p1 = Parameter(np.ones(1, dtype=np.float32))
        p2 = Parameter(np.ones(1, dtype=np.float32), requires_grad=False)
        opt = SGD([p1, p2], lr=0.1)
        assert len(opt.params) == 1

    def test_negative_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=-1.0)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0], dtype=np.float32))
        opt = SGD([p], lr=0.05, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.numpy(), [0.0, 0.0], atol=1e-3)


class TestSchedulers:
    def _optimizer(self, lr=1.0):
        return SGD([Parameter(np.ones(1, dtype=np.float32))], lr=lr)

    def test_constant(self):
        opt = self._optimizer(0.5)
        sched = ConstantLR(opt)
        assert [sched.step() for _ in range(3)] == [0.5, 0.5, 0.5]

    def test_cosine_endpoints(self):
        opt = self._optimizer(1.0)
        sched = CosineAnnealingLR(opt, total_steps=10, min_lr=0.1)
        first = sched.step()
        values = [sched.step() for _ in range(10)]
        assert first == pytest.approx(1.0)
        assert values[-1] == pytest.approx(0.1)
        assert all(values[i] >= values[i + 1] for i in range(len(values) - 1))

    def test_cosine_halfway(self):
        opt = self._optimizer(2.0)
        sched = CosineAnnealingLR(opt, total_steps=10)
        lr_at_half = sched.get_lr(5)
        assert lr_at_half == pytest.approx(1.0)

    def test_step_lr(self):
        opt = self._optimizer(1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        values = [sched.step() for _ in range(5)]
        assert values == pytest.approx([1.0, 1.0, 0.1, 0.1, 0.01])

    def test_warmup_then_cosine(self):
        opt = self._optimizer(1.0)
        sched = LinearWarmup(opt, warmup_steps=5, after=CosineAnnealingLR(opt, total_steps=10))
        warmup_values = [sched.step() for _ in range(5)]
        assert warmup_values == pytest.approx([0.2, 0.4, 0.6, 0.8, 1.0])
        post = sched.step()
        assert post == pytest.approx(1.0)

    def test_scheduler_writes_to_optimizer(self):
        opt = self._optimizer(1.0)
        sched = CosineAnnealingLR(opt, total_steps=4)
        for _ in range(5):
            sched.step()
        assert opt.lr == pytest.approx(0.0)

    def test_warmup_without_after_holds_base_lr(self):
        opt = self._optimizer(1.0)
        sched = LinearWarmup(opt, warmup_steps=2)
        assert [round(sched.step(), 3) for _ in range(4)] == [0.5, 1.0, 1.0, 1.0]

    def test_cosine_math_matches_formula(self):
        opt = self._optimizer(1.0)
        sched = CosineAnnealingLR(opt, total_steps=7)
        for step in range(8):
            expected = 0.5 * (1 + math.cos(math.pi * min(step / 7, 1.0)))
            assert sched.get_lr(step) == pytest.approx(expected)
