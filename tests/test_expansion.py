"""Unit tests for NetBooster Step 1: Network Expansion."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    EXPANDED_BLOCK_TYPES,
    ExpandedBasicBlock,
    ExpandedBottleneck,
    ExpandedInvertedResidual,
    ExpansionConfig,
    expand_network,
    find_expandable_convs,
    select_expansion_sites,
)
from repro.eval import count_complexity, count_parameters
from repro.models import mobilenet_v2


class TestExpansionConfig:
    def test_defaults_follow_paper(self):
        config = ExpansionConfig()
        assert config.block_type == "inverted_residual"
        assert config.expansion_ratio == 6
        assert config.fraction == 0.5
        assert config.placement == "uniform"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"block_type": "transformer"},
            {"expansion_ratio": 0},
            {"fraction": 0.0},
            {"fraction": 1.5},
            {"placement": "everywhere"},
            {"activation": "gelu"},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExpansionConfig(**kwargs)


class TestSiteSelection:
    def test_fraction_half(self):
        config = ExpansionConfig(fraction=0.5)
        sites = select_expansion_sites(8, config)
        assert len(sites) == 4

    def test_explicit_count_overrides_fraction(self):
        config = ExpansionConfig(fraction=0.5, num_expanded=3)
        assert len(select_expansion_sites(10, config)) == 3

    def test_placements(self):
        n = 10
        first = select_expansion_sites(n, ExpansionConfig(placement="first", num_expanded=4))
        last = select_expansion_sites(n, ExpansionConfig(placement="last", num_expanded=4))
        middle = select_expansion_sites(n, ExpansionConfig(placement="middle", num_expanded=4))
        uniform = select_expansion_sites(n, ExpansionConfig(placement="uniform", num_expanded=4))
        assert first == [0, 1, 2, 3]
        assert last == [6, 7, 8, 9]
        assert middle == [3, 4, 5, 6]
        assert uniform[0] == 0 and uniform[-1] == n - 1  # spans the whole depth

    def test_uniform_sites_are_spread(self):
        sites = select_expansion_sites(9, ExpansionConfig(num_expanded=3))
        assert sites == [0, 4, 8]

    def test_count_clamped_to_candidates(self):
        assert len(select_expansion_sites(2, ExpansionConfig(num_expanded=5))) == 2

    def test_empty_candidates(self):
        assert select_expansion_sites(0, ExpansionConfig()) == []


class TestFindExpandableConvs:
    def test_mobilenet_candidates_are_first_pointwise_convs(self):
        model = mobilenet_v2("35", num_classes=4)
        candidates = find_expandable_convs(model)
        assert len(candidates) == 7  # one per inverted residual block
        # Blocks with an expansion conv expose it; expand-ratio-1 blocks expose the projection.
        assert any(path.endswith("expand.conv") for path in candidates)
        assert any(path.endswith("project.conv") for path in candidates)
        for path in candidates:
            conv = model.get_submodule(path)
            assert isinstance(conv, nn.Conv2d)
            assert conv.kernel_size == 1

    def test_plain_model_falls_back_to_pointwise_convs(self):
        model = nn.Sequential(
            nn.Conv2d(3, 8, 3, padding=1),
            nn.Conv2d(8, 16, 1),
            nn.Conv2d(16, 16, 1),
        )
        candidates = find_expandable_convs(model)
        assert candidates == ["1", "2"]


class TestExpandedBlocks:
    @pytest.mark.parametrize("block_cls", list(EXPANDED_BLOCK_TYPES.values()))
    def test_forward_shape_and_receptive_field(self, block_cls):
        block = block_cls(8, 12, stride=1, expansion_ratio=4)
        x = nn.Tensor(np.random.rand(2, 8, 6, 6).astype(np.float32))
        out = block(x)
        assert out.shape == (2, 12, 6, 6)
        # All internal kernels are 1x1, so the receptive field matches a pointwise conv.
        for conv, _ in block.linear_chain():
            assert conv.kernel_size == 1

    @pytest.mark.parametrize("block_cls", list(EXPANDED_BLOCK_TYPES.values()))
    def test_residual_only_when_shapes_match(self, block_cls):
        assert block_cls(8, 8, stride=1).use_residual
        assert not block_cls(8, 12, stride=1).use_residual

    def test_decayable_activations_collected(self):
        block = ExpandedInvertedResidual(4, 4)
        assert len(block.decayable_activations()) == 2
        assert not block.is_linear
        for act in block.decayable_activations():
            act.set_alpha(1.0)
        assert block.is_linear

    def test_relu6_activation_option(self):
        block = ExpandedInvertedResidual(4, 4, activation="relu6")
        assert all(isinstance(act, nn.DecayableReLU6) for act in block.decayable_activations())

    def test_bottleneck_has_three_stages(self):
        assert len(ExpandedBottleneck(4, 6).linear_chain()) == 3
        assert len(ExpandedBasicBlock(4, 6).linear_chain()) == 2
        assert len(ExpandedInvertedResidual(4, 6).linear_chain()) == 3


class TestExpandNetwork:
    def test_expansion_increases_capacity_but_not_output_shape(self):
        model = mobilenet_v2("tiny", num_classes=8)
        giant, records = expand_network(model, ExpansionConfig(fraction=0.5))
        assert len(records) == 4  # 50% of 7 candidates, rounded
        assert count_parameters(giant) > count_parameters(model)
        x = nn.Tensor(np.random.rand(2, 3, 24, 24).astype(np.float32))
        model.eval(), giant.eval()
        assert giant(x).shape == model(x).shape

    def test_original_model_untouched(self):
        model = mobilenet_v2("tiny", num_classes=8)
        params_before = count_parameters(model)
        expand_network(model, ExpansionConfig(fraction=1.0))
        assert count_parameters(model) == params_before

    def test_inplace_expansion(self):
        model = mobilenet_v2("tiny", num_classes=8)
        giant, _ = expand_network(model, ExpansionConfig(fraction=0.5), inplace=True)
        assert giant is model

    def test_records_describe_replaced_convs(self):
        model = mobilenet_v2("tiny", num_classes=8)
        reference = mobilenet_v2("tiny", num_classes=8)
        giant, records = expand_network(model, ExpansionConfig(fraction=0.5))
        for record in records:
            original_conv = reference.get_submodule(record.path)
            assert record.in_channels == original_conv.in_channels
            assert record.out_channels == original_conv.out_channels
            replacement = giant.get_submodule(record.path)
            assert isinstance(replacement, EXPANDED_BLOCK_TYPES[record.block_type])

    def test_expansion_ratio_changes_giant_size_only(self):
        model = mobilenet_v2("tiny", num_classes=8)
        small, _ = expand_network(model, ExpansionConfig(expansion_ratio=2))
        large, _ = expand_network(model, ExpansionConfig(expansion_ratio=8))
        assert count_parameters(large) > count_parameters(small)

    def test_block_type_variants_all_expand(self):
        model = mobilenet_v2("tiny", num_classes=8)
        for block_type in EXPANDED_BLOCK_TYPES:
            giant, records = expand_network(model, ExpansionConfig(block_type=block_type, fraction=0.5))
            assert len(records) == 4
            x = nn.Tensor(np.random.rand(1, 3, 24, 24).astype(np.float32))
            giant.eval()
            assert giant(x).shape == (1, 8)

    def test_flops_increase_reported_by_complexity_counter(self):
        model = mobilenet_v2("tiny", num_classes=8)
        giant, _ = expand_network(model, ExpansionConfig(fraction=0.5))
        assert (
            count_complexity(giant, (3, 24, 24)).flops
            > count_complexity(model, (3, 24, 24)).flops
        )
