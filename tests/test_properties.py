"""Property-based tests (hypothesis) for the core invariants of NetBooster.

These cover the mathematical heart of the reproduction:

* kernel merging (paper Eq. 3-4) is exact for arbitrary channel counts;
* BatchNorm folding is exact for arbitrary statistics;
* expanded-block contraction is exact for every block type, channel
  configuration and expansion ratio once the activations are linear;
* the decayable activation interpolates correctly between ReLU and identity;
* autograd broadcasting rules match NumPy.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import nn
from repro.core import (
    EXPANDED_BLOCK_TYPES,
    add_identity_to_kernel,
    contract_block,
    densify_grouped_kernel,
    fuse_conv_bn,
    merge_sequential_kernels,
    select_expansion_sites,
    ExpansionConfig,
)
from repro.nn import functional as F

# Keep hypothesis fast and deterministic for CI-style runs.
FAST_SETTINGS = settings(max_examples=25, deadline=None, derandomize=True)

channels = st.integers(min_value=1, max_value=6)
small_channels = st.integers(min_value=2, max_value=5)


@st.composite
def conv_chain(draw):
    c1 = draw(channels)
    c2 = draw(channels)
    c3 = draw(channels)
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    w1 = rng.normal(size=(c2, c1, 1, 1)).astype(np.float32)
    b1 = rng.normal(size=c2).astype(np.float32)
    w2 = rng.normal(size=(c3, c2, 1, 1)).astype(np.float32)
    b2 = rng.normal(size=c3).astype(np.float32)
    x = rng.normal(size=(2, c1, 5, 5)).astype(np.float32)
    return w1, b1, w2, b2, x


class TestKernelMergeProperties:
    @FAST_SETTINGS
    @given(conv_chain())
    def test_pointwise_merge_is_exact(self, chain):
        w1, b1, w2, b2, x = chain
        merged_w, merged_b = merge_sequential_kernels(w1, b1, w2, b2)
        xt = nn.Tensor(x)
        expected = F.conv2d(F.conv2d(xt, nn.Tensor(w1), nn.Tensor(b1)), nn.Tensor(w2), nn.Tensor(b2))
        actual = F.conv2d(xt, nn.Tensor(merged_w), nn.Tensor(merged_b))
        np.testing.assert_allclose(actual.numpy(), expected.numpy(), rtol=1e-3, atol=1e-3)

    @FAST_SETTINGS
    @given(st.integers(2, 8), st.integers(0, 2**16))
    def test_depthwise_densification_is_exact(self, num_channels, seed):
        rng = np.random.default_rng(seed)
        w = rng.normal(size=(num_channels, 1, 1, 1)).astype(np.float32)
        dense = densify_grouped_kernel(w, num_channels)
        x = nn.Tensor(rng.normal(size=(1, num_channels, 4, 4)).astype(np.float32))
        np.testing.assert_allclose(
            F.conv2d(x, nn.Tensor(w), groups=num_channels).numpy(),
            F.conv2d(x, nn.Tensor(dense)).numpy(),
            rtol=1e-4,
            atol=1e-5,
        )

    @FAST_SETTINGS
    @given(st.integers(1, 8), st.integers(0, 2**16))
    def test_identity_addition_property(self, num_channels, seed):
        rng = np.random.default_rng(seed)
        w = rng.normal(size=(num_channels, num_channels, 1, 1)).astype(np.float32)
        x = nn.Tensor(rng.normal(size=(1, num_channels, 3, 3)).astype(np.float32))
        lhs = F.conv2d(x, nn.Tensor(add_identity_to_kernel(w))).numpy()
        rhs = (F.conv2d(x, nn.Tensor(w)) + x).numpy()
        np.testing.assert_allclose(lhs, rhs, rtol=1e-4, atol=1e-5)


class TestBatchNormFoldProperties:
    @FAST_SETTINGS
    @given(small_channels, small_channels, st.integers(0, 2**16))
    def test_fold_exact_for_random_statistics(self, c_in, c_out, seed):
        rng = np.random.default_rng(seed)
        conv = nn.Conv2d(c_in, c_out, 1, bias=True)
        conv.weight.data[...] = rng.normal(size=conv.weight.shape)
        conv.bias.data[...] = rng.normal(size=c_out)
        bn = nn.BatchNorm2d(c_out)
        bn.running_mean[...] = rng.normal(size=c_out)
        bn.running_var[...] = rng.uniform(0.2, 2.0, size=c_out)
        bn.weight.data[...] = rng.normal(1.0, 0.3, size=c_out)
        bn.bias.data[...] = rng.normal(size=c_out)
        bn.eval()

        x = nn.Tensor(rng.normal(size=(2, c_in, 4, 4)).astype(np.float32))
        expected = bn(conv(x)).numpy()
        weight, bias = fuse_conv_bn(conv.weight.data, conv.bias.data, bn)
        actual = F.conv2d(x, nn.Tensor(weight), nn.Tensor(bias)).numpy()
        np.testing.assert_allclose(actual, expected, rtol=1e-3, atol=1e-4)


class TestContractionProperties:
    @FAST_SETTINGS
    @given(
        st.sampled_from(sorted(EXPANDED_BLOCK_TYPES)),
        st.integers(2, 6),
        st.integers(2, 6),
        st.integers(1, 6),
        st.integers(0, 2**16),
    )
    def test_contraction_exact_for_all_configurations(self, block_type, c_in, c_out, ratio, seed):
        rng = np.random.default_rng(seed)
        block = EXPANDED_BLOCK_TYPES[block_type](c_in, c_out, expansion_ratio=ratio)
        for _, module in block.named_modules():
            if isinstance(module, nn.BatchNorm2d):
                module.running_mean[...] = rng.normal(0, 0.3, module.num_features)
                module.running_var[...] = rng.uniform(0.5, 1.5, module.num_features)
        block.eval()
        for act in block.decayable_activations():
            act.set_alpha(1.0)
        conv = contract_block(block)
        conv.eval()
        x = nn.Tensor(rng.normal(size=(2, c_in, 5, 5)).astype(np.float32))
        np.testing.assert_allclose(conv(x).numpy(), block(x).numpy(), rtol=2e-3, atol=2e-3)

    @FAST_SETTINGS
    @given(st.integers(2, 6), st.integers(1, 6), st.integers(0, 2**16))
    def test_contracted_conv_shape_is_independent_of_ratio(self, c_in, ratio, seed):
        """Paper remark: the contracted cost does not depend on the expansion ratio."""
        block = EXPANDED_BLOCK_TYPES["inverted_residual"](c_in, c_in + 2, expansion_ratio=ratio)
        for act in block.decayable_activations():
            act.set_alpha(1.0)
        conv = contract_block(block)
        assert conv.weight.shape == (c_in + 2, c_in, 1, 1)


class TestDecayableActivationProperties:
    @FAST_SETTINGS
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.lists(st.floats(min_value=-10, max_value=10), min_size=1, max_size=16),
    )
    def test_interpolation_bounds(self, alpha, values):
        act = nn.DecayableReLU(alpha=alpha)
        x = np.asarray(values, dtype=np.float32)
        out = act(nn.Tensor(x)).numpy()
        relu = np.maximum(x, 0)
        lower = np.minimum(relu, x)
        upper = np.maximum(relu, x)
        assert np.all(out >= lower - 1e-5)
        assert np.all(out <= upper + 1e-5)

    @FAST_SETTINGS
    @given(st.lists(st.floats(min_value=-10, max_value=10), min_size=1, max_size=16))
    def test_positive_inputs_unchanged_for_any_alpha(self, values):
        x = np.abs(np.asarray(values, dtype=np.float32))
        for alpha in (0.0, 0.3, 0.7, 1.0):
            out = nn.DecayableReLU(alpha=alpha)(nn.Tensor(x)).numpy()
            np.testing.assert_allclose(out, x, rtol=1e-6)


class TestSelectionProperties:
    @FAST_SETTINGS
    @given(st.integers(1, 40), st.floats(0.05, 1.0), st.sampled_from(["uniform", "first", "middle", "last"]))
    def test_selected_sites_are_valid_and_sorted(self, num_candidates, fraction, placement):
        config = ExpansionConfig(fraction=fraction, placement=placement)
        sites = select_expansion_sites(num_candidates, config)
        assert sites == sorted(sites)
        assert len(sites) == len(set(sites))
        assert all(0 <= s < num_candidates for s in sites)
        assert 1 <= len(sites) <= num_candidates


class TestAutogradProperties:
    @FAST_SETTINGS
    @given(
        st.integers(1, 4), st.integers(1, 4), st.integers(0, 2**16)
    )
    def test_broadcast_addition_matches_numpy(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(rows, cols))
        b = rng.normal(size=(cols,))
        out = nn.Tensor(a) + nn.Tensor(b)
        # Tensors store float32 by default, so compare at single precision tolerance.
        np.testing.assert_allclose(out.numpy(), (a + b).astype(np.float32), rtol=1e-5, atol=1e-6)

    @FAST_SETTINGS
    @given(st.integers(1, 5), st.integers(1, 5), st.integers(0, 2**16))
    def test_sum_gradient_is_ones(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        t = nn.Tensor(rng.normal(size=(rows, cols)), requires_grad=True)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((rows, cols)))
