"""Unit tests for the synthetic data substrate: generator, datasets, loader."""

import numpy as np
import pytest

from repro.data import (
    DOWNSTREAM_SPECS,
    ClassificationDataset,
    DataLoader,
    DecoderSpec,
    LatentClassSampler,
    RandomImageDecoder,
    SyntheticImageNet,
    SyntheticVOC,
    downstream_dataset,
)


class TestRandomImageDecoder:
    def test_output_shape_and_range(self, rng):
        decoder = RandomImageDecoder(DecoderSpec(base_size=6))
        image = decoder.decode(rng.normal(size=32).astype(np.float32))
        assert image.shape == (3, 24, 24)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_deterministic_given_latent(self, rng):
        decoder = RandomImageDecoder()
        z = rng.normal(size=32).astype(np.float32)
        np.testing.assert_allclose(decoder.decode(z), decoder.decode(z))

    def test_same_seed_same_decoder(self, rng):
        z = rng.normal(size=32).astype(np.float32)
        a = RandomImageDecoder(DecoderSpec(seed=7)).decode(z)
        b = RandomImageDecoder(DecoderSpec(seed=7)).decode(z)
        c = RandomImageDecoder(DecoderSpec(seed=8)).decode(z)
        np.testing.assert_allclose(a, b)
        assert not np.allclose(a, c)

    def test_batch_decode(self, rng):
        decoder = RandomImageDecoder()
        latents = rng.normal(size=(5, 32)).astype(np.float32)
        images = decoder.decode_batch(latents)
        assert images.shape == (5, 3, 24, 24)


class TestLatentClassSampler:
    def test_class_centres_are_distinct(self):
        sampler = LatentClassSampler(8, 32)
        distances = np.linalg.norm(sampler.centres[:, None] - sampler.centres[None, :], axis=-1)
        off_diagonal = distances[~np.eye(8, dtype=bool)]
        assert off_diagonal.min() > 0.1

    def test_samples_cluster_around_centres(self, rng):
        sampler = LatentClassSampler(4, 32, intra_class_std=0.1, nuisance_std=0.0)
        samples = sampler.sample_batch(np.zeros(20, dtype=int), rng)
        centre = sampler.signal_scale * sampler.centres[0] * sampler.signal_mask
        assert np.linalg.norm(samples.mean(axis=0) - centre) < 0.5

    def test_requires_two_classes(self):
        with pytest.raises(ValueError):
            LatentClassSampler(1, 32)


class TestClassificationDataset:
    def _dataset(self, n=20, classes=4):
        images = np.random.rand(n, 3, 8, 8).astype(np.float32)
        labels = np.arange(n) % classes
        return ClassificationDataset(images, labels, classes)

    def test_len_getitem(self):
        ds = self._dataset()
        assert len(ds) == 20
        image, label = ds[3]
        assert image.shape == (3, 8, 8)
        assert label == 3

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ClassificationDataset(np.zeros((3, 3, 4, 4)), np.zeros(2), 2)

    def test_subset_and_split(self):
        ds = self._dataset()
        subset = ds.subset(np.array([0, 1, 2]))
        assert len(subset) == 3
        train, val = ds.split(0.75, seed=1)
        assert len(train) == 15 and len(val) == 5


class TestSyntheticImageNet:
    def test_shapes_and_labels(self):
        data = SyntheticImageNet(num_classes=5, samples_per_class=6, val_samples_per_class=2, resolution=16)
        assert len(data.train) == 30
        assert len(data.val) == 10
        assert data.train.images.shape[1:] == (3, 16, 16)
        assert set(np.unique(data.train.labels)) == set(range(5))

    def test_resolution_must_be_multiple_of_four(self):
        with pytest.raises(ValueError):
            SyntheticImageNet(resolution=18)

    def test_classes_are_visually_distinguishable(self):
        """Per-class mean images should differ more across classes than noise."""
        data = SyntheticImageNet(num_classes=4, samples_per_class=20, val_samples_per_class=2, resolution=16,
                                 intra_class_std=0.3)
        means = np.stack([
            data.train.images[data.train.labels == c].mean(axis=0) for c in range(4)
        ])
        across = np.linalg.norm(means[0] - means[1])
        within = np.linalg.norm(
            data.train.images[data.train.labels == 0][0] - means[0]
        )
        assert across > 0.2 * within  # class signal is present

    def test_reproducible_with_seed(self):
        a = SyntheticImageNet(num_classes=3, samples_per_class=4, val_samples_per_class=2, resolution=16, seed=5)
        b = SyntheticImageNet(num_classes=3, samples_per_class=4, val_samples_per_class=2, resolution=16, seed=5)
        np.testing.assert_allclose(a.train.images, b.train.images)


class TestDownstreamDatasets:
    def test_all_specs_buildable(self):
        for name in DOWNSTREAM_SPECS:
            train, val = downstream_dataset(name, resolution=16)
            spec = DOWNSTREAM_SPECS[name]
            assert train.num_classes == spec.num_classes
            assert len(train) == spec.num_classes * spec.samples_per_class
            assert len(val) == spec.num_classes * spec.val_samples_per_class

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            downstream_dataset("imagenet22k")

    def test_shares_decoder_with_pretraining_corpus(self):
        """Downstream images use the same decoder seed, hence similar statistics."""
        corpus = SyntheticImageNet(num_classes=3, samples_per_class=5, val_samples_per_class=2, resolution=16)
        train, _ = downstream_dataset("pets", resolution=16)
        assert abs(corpus.train.images.mean() - train.images.mean()) < 0.2


class TestSyntheticVOC:
    def test_dataset_structure(self):
        voc = SyntheticVOC(num_classes=4, num_train=6, num_val=3, resolution=32, object_size=12)
        assert len(voc.train) == 6 and len(voc.val) == 3
        sample = voc.train[0]
        assert sample.image.shape == (3, 32, 32)
        assert sample.boxes.shape[1] == 4
        assert len(sample.boxes) == len(sample.labels)
        assert sample.boxes.max() <= 32

    def test_boxes_match_pasted_objects(self):
        voc = SyntheticVOC(num_classes=3, num_train=4, num_val=1, resolution=32, object_size=12, max_objects=1)
        sample = voc.train[0]
        x0, y0, x1, y1 = sample.boxes[0].astype(int)
        assert (x1 - x0) == 12 and (y1 - y0) == 12

    def test_object_size_validation(self):
        with pytest.raises(ValueError):
            SyntheticVOC(object_size=10)

    def test_images_helper_stacks(self):
        voc = SyntheticVOC(num_classes=2, num_train=3, num_val=1, resolution=32)
        assert voc.train.images().shape == (3, 3, 32, 32)


class TestDataLoader:
    def _dataset(self, n=23):
        return ClassificationDataset(np.random.rand(n, 3, 8, 8).astype(np.float32), np.arange(n) % 3, 3)

    def test_batch_shapes_and_count(self):
        loader = DataLoader(self._dataset(), batch_size=8, shuffle=False)
        batches = list(loader)
        assert len(loader) == 3
        assert len(batches) == 3
        assert batches[0][0].shape == (8, 3, 8, 8)
        assert batches[-1][0].shape == (7, 3, 8, 8)

    def test_drop_last(self):
        loader = DataLoader(self._dataset(), batch_size=8, drop_last=True)
        assert len(loader) == 2
        assert all(len(labels) == 8 for _, labels in loader)

    def test_shuffle_changes_order_but_not_content(self):
        ds = self._dataset()
        loader = DataLoader(ds, batch_size=23, shuffle=True, seed=3)
        images, labels = next(iter(loader))
        assert sorted(labels.tolist()) == sorted(ds.labels.tolist())
        assert not np.array_equal(labels, ds.labels)

    def test_transform_applied(self):
        calls = []

        class Marker:
            def __call__(self, image, rng):
                calls.append(1)
                return image * 0

        loader = DataLoader(self._dataset(5), batch_size=5, transform=Marker())
        images, _ = next(iter(loader))
        assert len(calls) == 5
        assert images.sum() == 0

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(self._dataset(), batch_size=0)


class TestShardedLoader:
    """Sharded loading contract for data-parallel training: disjoint shards,
    exact epoch coverage, identical batch contents regardless of which worker
    (or pipeline mode) assembles them."""

    def _dataset(self, n=23):
        rng = np.random.default_rng(11)
        return ClassificationDataset(rng.random((n, 3, 8, 8)).astype(np.float32), np.arange(n) % 3, 3)

    def _loader(self, ds, shard=None, prefetch=True, seed=7):
        return DataLoader(ds, batch_size=4, shuffle=True, seed=seed, shard=shard, prefetch=prefetch)

    def test_invalid_shard(self):
        for shard in [(2, 2), (-1, 2), (0, 0)]:
            with pytest.raises(ValueError):
                DataLoader(self._dataset(), batch_size=4, shard=shard)

    def test_shards_disjoint_and_cover_epoch_exactly_once(self):
        ds = self._dataset()
        world = 3
        full = list(self._loader(ds))
        shard_batches = [list(self._loader(ds, shard=(r, world))) for r in range(world)]
        assert sum(len(b) for b in shard_batches) == len(full)
        # Rank r yields exactly the global batches r, r+world, r+2*world, ...
        for rank, batches in enumerate(shard_batches):
            for local, (images, labels) in enumerate(batches):
                ref_images, ref_labels = full[rank + local * world]
                np.testing.assert_array_equal(images, ref_images)
                np.testing.assert_array_equal(labels, ref_labels)
        # Disjoint + exhaustive: the union of yielded samples is the dataset.
        seen = np.concatenate([
            labels for batches in shard_batches for _, labels in batches
        ])
        assert len(seen) == len(ds)

    def test_shard_of_one_is_byte_identical_to_unsharded(self):
        ds = self._dataset()
        for (a_img, a_lab), (b_img, b_lab) in zip(self._loader(ds), self._loader(ds, shard=(0, 1))):
            np.testing.assert_array_equal(a_img, b_img)
            np.testing.assert_array_equal(a_lab, b_lab)

    def test_replay_identical_across_runs_and_prefetch_modes(self):
        ds = self._dataset()
        reference = [list(self._loader(ds, shard=(1, 2), prefetch=False)) for _ in range(1)][0]
        for prefetch in (False, True):
            run = list(self._loader(ds, shard=(1, 2), prefetch=prefetch))
            assert len(run) == len(reference)
            for (images, labels), (ref_images, ref_labels) in zip(run, reference):
                np.testing.assert_array_equal(images, ref_images)
                np.testing.assert_array_equal(labels, ref_labels)

    def test_sharding_with_transform_keeps_per_batch_seeds_aligned(self):
        """Batch b gets the same augmentation no matter which rank builds it."""

        class Jitter:
            def __call__(self, image, rng):
                return image + rng.normal(0, 0.1, size=image.shape).astype(np.float32)

        ds = self._dataset()
        full = list(DataLoader(ds, batch_size=4, shuffle=True, seed=5, transform=Jitter()))
        for rank in range(2):
            sharded = list(DataLoader(ds, batch_size=4, shuffle=True, seed=5, transform=Jitter(), shard=(rank, 2)))
            for local, (images, labels) in enumerate(sharded):
                np.testing.assert_array_equal(images, full[rank + local * 2][0])

    def test_epoch_plans_advance_identically_across_shards(self):
        """Epoch 2 of rank 0 matches epoch 2 of the unsharded loader (the
        loader RNG consumes identically regardless of shard)."""
        ds = self._dataset()
        full = self._loader(ds)
        sharded = self._loader(ds, shard=(0, 2))
        list(full), list(sharded)  # burn epoch 1
        epoch2_full = list(full)
        epoch2_sharded = list(sharded)
        for local, (images, labels) in enumerate(epoch2_sharded):
            np.testing.assert_array_equal(images, epoch2_full[local * 2][0])
            np.testing.assert_array_equal(labels, epoch2_full[local * 2][1])
