"""Unit tests for the extra normalisation layers."""

import numpy as np
import pytest

from repro import nn
from repro.nn.norm import FrozenBatchNorm2d, GroupNorm, InstanceNorm2d, LayerNorm

from helpers import make_tensor


class TestGroupNorm:
    def test_output_is_normalised_per_group(self):
        norm = GroupNorm(num_groups=2, num_channels=4, affine=False)
        x = make_tensor((3, 4, 5, 5))
        out = norm(x).numpy()
        grouped = out.reshape(3, 2, 2, 5, 5)
        means = grouped.mean(axis=(2, 3, 4))
        variances = grouped.var(axis=(2, 3, 4))
        np.testing.assert_allclose(means, 0.0, atol=1e-4)
        np.testing.assert_allclose(variances, 1.0, atol=1e-3)

    def test_affine_parameters_shift_and_scale(self):
        norm = GroupNorm(num_groups=1, num_channels=2)
        norm.weight.data[...] = 3.0
        norm.bias.data[...] = -1.0
        x = make_tensor((2, 2, 4, 4))
        plain = GroupNorm(num_groups=1, num_channels=2, affine=False)(x).numpy()
        out = norm(x).numpy()
        np.testing.assert_allclose(out, 3.0 * plain - 1.0, atol=1e-5)

    def test_statistics_independent_of_batch_size(self):
        norm = GroupNorm(num_groups=2, num_channels=4, affine=False)
        x = make_tensor((4, 4, 6, 6))
        full = norm(x).numpy()
        first_only = norm(nn.Tensor(x.data[:1])).numpy()
        np.testing.assert_allclose(full[:1], first_only, atol=1e-5)

    def test_gradients_flow_to_input_and_affine(self):
        norm = GroupNorm(num_groups=2, num_channels=4)
        x = make_tensor((2, 4, 3, 3))
        out = norm(x)
        out.sum().backward()
        assert x.grad is not None
        assert norm.weight.grad is not None
        assert norm.bias.grad is not None

    def test_indivisible_groups_raise(self):
        with pytest.raises(ValueError):
            GroupNorm(num_groups=3, num_channels=4)

    def test_wrong_channel_count_raises(self):
        norm = GroupNorm(num_groups=2, num_channels=4)
        with pytest.raises(ValueError):
            norm(make_tensor((1, 6, 3, 3)))


class TestLayerNorm:
    def test_normalises_trailing_dimension(self):
        norm = LayerNorm(8, affine=False)
        x = make_tensor((5, 8))
        out = norm(x).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.var(axis=-1), 1.0, atol=1e-3)

    def test_affine_is_learnable(self):
        norm = LayerNorm(4)
        x = make_tensor((3, 4))
        norm(x).sum().backward()
        assert norm.weight.grad is not None
        assert norm.bias.grad is not None

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            LayerNorm(4)(make_tensor((3, 5)))


class TestInstanceNorm:
    def test_normalises_each_sample_channel(self):
        norm = InstanceNorm2d(3)
        x = make_tensor((2, 3, 6, 6))
        out = norm(x).numpy()
        np.testing.assert_allclose(out.mean(axis=(2, 3)), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.var(axis=(2, 3)), 1.0, atol=1e-2)

    def test_wrong_channels_raise(self):
        with pytest.raises(ValueError):
            InstanceNorm2d(3)(make_tensor((1, 2, 4, 4)))


class TestFrozenBatchNorm:
    def test_matches_eval_mode_batch_norm(self, rng):
        bn = nn.BatchNorm2d(5)
        bn.running_mean[...] = rng.normal(size=5)
        bn.running_var[...] = rng.uniform(0.5, 2.0, size=5)
        bn.weight.data[...] = rng.normal(size=5)
        bn.bias.data[...] = rng.normal(size=5)
        bn.eval()
        frozen = FrozenBatchNorm2d.from_batch_norm(bn)
        x = make_tensor((2, 5, 4, 4), rng)
        np.testing.assert_allclose(frozen(x).numpy(), bn(x).numpy(), atol=1e-4)

    def test_has_no_trainable_parameters(self):
        frozen = FrozenBatchNorm2d(4)
        assert frozen.num_parameters() == 0

    def test_scale_and_shift_round_trip(self):
        frozen = FrozenBatchNorm2d(3)
        frozen.running_mean[...] = [1.0, 2.0, 3.0]
        frozen.running_var[...] = [4.0, 4.0, 4.0]
        scale, shift = frozen.scale_and_shift()
        x = make_tensor((1, 3, 2, 2))
        expected = x.numpy() * scale.reshape(1, 3, 1, 1) + shift.reshape(1, 3, 1, 1)
        np.testing.assert_allclose(frozen(x).numpy(), expected, atol=1e-5)
