"""Unit tests for the detection stack: detector model, losses, AP50, trainer."""

import numpy as np
import pytest

from repro import nn
from repro.data import SyntheticVOC
from repro.models import DetectionLoss, TinyDetector, decode_predictions, mobilenet_v2
from repro.models.detector import build_targets
from repro.train import DetectionTrainer, box_iou, evaluate_ap50, mean_ap50
from repro.train.metrics import average_precision
from repro.utils import ExperimentConfig


@pytest.fixture(scope="module")
def voc():
    return SyntheticVOC(num_classes=3, num_train=12, num_val=6, resolution=32, object_size=12)


@pytest.fixture()
def detector():
    backbone = mobilenet_v2("tiny", num_classes=4)
    return TinyDetector(backbone, num_classes=3, image_size=32)


class TestBoxIoU:
    def test_identical_boxes(self):
        box = np.array([[0, 0, 10, 10]])
        assert box_iou(box, box)[0, 0] == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        a = np.array([[0, 0, 10, 10]])
        b = np.array([[20, 20, 30, 30]])
        assert box_iou(a, b)[0, 0] == 0.0

    def test_half_overlap(self):
        a = np.array([[0, 0, 10, 10]])
        b = np.array([[5, 0, 15, 10]])
        assert box_iou(a, b)[0, 0] == pytest.approx(1 / 3, rel=1e-6)

    def test_empty_inputs(self):
        assert box_iou(np.zeros((0, 4)), np.array([[0, 0, 1, 1]])).shape == (0, 1)


class TestAP:
    def test_average_precision_perfect(self):
        assert average_precision(np.array([0.5, 1.0]), np.array([1.0, 1.0])) == pytest.approx(1.0)

    def test_mean_ap50_perfect_detection(self):
        gt = [{"boxes": np.array([[0, 0, 10, 10]]), "labels": np.array([0])}]
        det = [{"boxes": np.array([[1, 1, 10, 10]]), "scores": np.array([0.9]), "labels": np.array([0])}]
        assert mean_ap50(det, gt, num_classes=1) == pytest.approx(100.0)

    def test_mean_ap50_wrong_class_is_zero(self):
        gt = [{"boxes": np.array([[0, 0, 10, 10]]), "labels": np.array([0])}]
        det = [{"boxes": np.array([[0, 0, 10, 10]]), "scores": np.array([0.9]), "labels": np.array([1])}]
        assert mean_ap50(det, gt, num_classes=2) == 0.0

    def test_mean_ap50_high_scoring_false_positive_penalised(self):
        gt = [{"boxes": np.array([[0, 0, 10, 10]]), "labels": np.array([0])}]
        det = [{
            # The higher-scoring detection misses the object entirely, so the
            # precision at full recall (and hence AP) drops below 100.
            "boxes": np.array([[50, 50, 60, 60], [0, 0, 10, 10]]),
            "scores": np.array([0.9, 0.8]),
            "labels": np.array([0, 0]),
        }]
        assert 0.0 < mean_ap50(det, gt, num_classes=1) < 100.0


class TestTargetsAndLoss:
    def test_build_targets_assigns_centre_cell(self):
        boxes = np.array([[0.0, 0.0, 16.0, 16.0]])
        labels = np.array([2])
        obj, box_t, cls_t, mask = build_targets(boxes, labels, grid=4, image_size=32, num_classes=3)
        assert obj.sum() == 1
        row, col = np.argwhere(obj == 1)[0]
        assert (row, col) == (1, 1)
        assert cls_t[row, col] == 2
        np.testing.assert_allclose(box_t[row, col], [0.0, 0.0, 0.5, 0.5])

    def test_detection_loss_positive_and_differentiable(self, detector, voc):
        grid = detector.grid_size(32)
        sample = voc.train[0]
        obj, box_t, cls_t, _ = build_targets(sample.boxes, sample.labels, grid, 32, 3)
        predictions = detector(nn.Tensor(sample.image[None]))
        loss = DetectionLoss()(predictions, obj[None], box_t[None], cls_t[None])
        assert loss.item() > 0
        loss.backward()
        assert any(p.grad is not None for p in detector.parameters())

    def test_detection_loss_without_objects_is_objectness_only(self, detector):
        grid = detector.grid_size(32)
        predictions = detector(nn.Tensor(np.zeros((1, 3, 32, 32), dtype=np.float32)))
        loss = DetectionLoss()(
            predictions,
            np.zeros((1, grid, grid), dtype=np.float32),
            np.zeros((1, grid, grid, 4), dtype=np.float32),
            np.zeros((1, grid, grid), dtype=np.int64),
        )
        assert loss.item() > 0


class TestDetectorModel:
    def test_output_shape(self, detector):
        out = detector(nn.Tensor(np.zeros((2, 3, 32, 32), dtype=np.float32)))
        assert out.shape[0] == 2
        assert out.shape[1] == 5 + 3

    def test_decode_predictions_structure(self, detector):
        detector.eval()
        with nn.no_grad():
            preds = detector(nn.Tensor(np.random.rand(2, 3, 32, 32).astype(np.float32))).numpy()
        decoded = decode_predictions(preds, image_size=32, score_threshold=0.0)
        assert len(decoded) == 2
        for det in decoded:
            assert set(det) == {"boxes", "scores", "labels"}
            assert det["boxes"].shape[1] == 4 if len(det["boxes"]) else True

    def test_decode_respects_threshold(self, detector):
        detector.eval()
        with nn.no_grad():
            preds = detector(nn.Tensor(np.random.rand(1, 3, 32, 32).astype(np.float32))).numpy()
        none = decode_predictions(preds, image_size=32, score_threshold=1.1)
        assert len(none[0]["boxes"]) == 0


class TestDetectionTrainer:
    def test_short_training_runs_and_evaluates(self, voc):
        backbone = mobilenet_v2("tiny", num_classes=4)
        detector = TinyDetector(backbone, num_classes=3, image_size=32)
        trainer = DetectionTrainer(detector, ExperimentConfig(epochs=1, batch_size=8, lr=0.01))
        history = trainer.fit(voc.train, voc.val)
        assert len(history["train_loss"]) == 1
        assert len(history["val_ap50"]) == 1
        assert 0.0 <= history["val_ap50"][0] <= 100.0

    def test_evaluate_ap50_range(self, voc, detector):
        score = evaluate_ap50(detector, voc.val)
        assert 0.0 <= score <= 100.0
