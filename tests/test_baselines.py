"""Unit tests for the baseline training methods: NetAug, KD variants, DropBlock."""

import numpy as np
import pytest

from repro import nn
from repro.baselines import (
    DropBlock2d,
    KDLoss,
    NetAugLoss,
    NetAugModel,
    RocketLaunchingLoss,
    TeacherFreeKDLoss,
    insert_dropblock,
    make_teacher,
    train_vanilla,
    train_with_kd,
    train_with_netaug,
    train_with_rco_kd,
    train_with_rocket_launching,
    train_with_tf_kd,
)
from repro.data import SyntheticImageNet
from repro.eval import count_complexity
from repro.models import mobilenet_v2
from repro.utils import ExperimentConfig


@pytest.fixture(scope="module")
def corpus():
    return SyntheticImageNet(num_classes=4, samples_per_class=10, val_samples_per_class=4, resolution=16)


FAST = ExperimentConfig(epochs=1, batch_size=16, lr=0.02)


class TestVanilla:
    def test_train_vanilla_returns_history(self, corpus):
        history = train_vanilla(mobilenet_v2("tiny", num_classes=4), corpus.train, corpus.val, FAST)
        assert len(history.val_accuracy) == 1
        assert np.isfinite(history.train_loss[0])


class TestDropBlock:
    def test_eval_mode_is_identity(self, rng):
        block = DropBlock2d(drop_prob=0.5, block_size=3)
        block.eval()
        x = nn.Tensor(rng.random((2, 4, 8, 8)).astype(np.float32))
        np.testing.assert_allclose(block(x).numpy(), x.numpy())

    def test_training_drops_contiguous_regions(self, rng):
        block = DropBlock2d(drop_prob=0.4, block_size=3, seed=1)
        block.train()
        x = nn.Tensor(np.ones((4, 8, 12, 12), dtype=np.float32))
        out = block(x).numpy()
        assert (out == 0).any()
        # Non-zero entries are rescaled above 1 to conserve the expected value.
        assert out.max() > 1.0

    def test_zero_probability_is_identity(self, rng):
        block = DropBlock2d(drop_prob=0.0)
        x = nn.Tensor(rng.random((1, 2, 6, 6)).astype(np.float32))
        assert block(x) is x

    def test_insert_dropblock_adds_layers_without_changing_inference(self, rng):
        model = mobilenet_v2("tiny", num_classes=4)
        regularised = insert_dropblock(model, drop_prob=0.2, every=2)
        dropblocks = [m for _, m in regularised.named_modules() if isinstance(m, DropBlock2d)]
        assert len(dropblocks) >= 2
        x = nn.Tensor(rng.random((2, 3, 16, 16)).astype(np.float32))
        model.eval(), regularised.eval()
        np.testing.assert_allclose(regularised(x).numpy(), model(x).numpy(), rtol=1e-4, atol=1e-5)

    def test_insert_dropblock_requires_features_backbone(self):
        with pytest.raises(TypeError):
            insert_dropblock(nn.Linear(4, 2))


class TestNetAug:
    def test_supernet_base_path_matches_base_model_at_init(self, rng):
        model = mobilenet_v2("tiny", num_classes=4)
        supernet = NetAugModel(model, augment_ratio=2.0)
        x = nn.Tensor(rng.random((2, 3, 16, 16)).astype(np.float32))
        model.eval(), supernet.eval()
        supernet.set_augmented(False)
        np.testing.assert_allclose(supernet(x).numpy(), model(x).numpy(), rtol=1e-4, atol=1e-4)

    def test_augmented_path_differs_and_has_same_output_shape(self, rng):
        supernet = NetAugModel(mobilenet_v2("tiny", num_classes=4), augment_ratio=2.0)
        supernet.eval()
        x = nn.Tensor(rng.random((2, 3, 16, 16)).astype(np.float32))
        supernet.set_augmented(False)
        base_out = supernet(x).numpy()
        supernet.set_augmented(True)
        augmented_out = supernet(x).numpy()
        assert augmented_out.shape == base_out.shape
        assert not np.allclose(augmented_out, base_out)

    def test_netaug_loss_supervises_both_paths(self, corpus):
        supernet = NetAugModel(mobilenet_v2("tiny", num_classes=4))
        loss_fn = NetAugLoss(aug_weight=1.0)
        images = nn.Tensor(corpus.train.images[:8])
        loss, logits = loss_fn(supernet, images, corpus.train.labels[:8])
        assert logits.shape == (8, 4)
        solo_loss, _ = NetAugLoss(aug_weight=0.0)(supernet, images, corpus.train.labels[:8])
        assert loss.item() > solo_loss.item()

    def test_exported_model_has_original_complexity(self, corpus):
        base = mobilenet_v2("tiny", num_classes=4)
        exported, history = train_with_netaug(base, corpus.train, corpus.val, FAST, augment_ratio=2.0)
        assert len(history.val_accuracy) == 1
        original = count_complexity(base, (3, 16, 16))
        result = count_complexity(exported, (3, 16, 16))
        assert result.flops == original.flops
        assert result.params == original.params

    def test_block_without_expansion_rejected(self):
        from repro.baselines.netaug import NetAugBlock
        from repro.models import InvertedResidual

        with pytest.raises(ValueError):
            NetAugBlock(InvertedResidual(8, 8, expand_ratio=1))


class TestKD:
    def test_make_teacher_is_larger(self):
        student = mobilenet_v2("tiny", num_classes=4)
        teacher = make_teacher(student, num_classes=4)
        assert count_complexity(teacher, (3, 16, 16)).params > count_complexity(student, (3, 16, 16)).params

    def test_kd_loss_combines_hard_and_soft_terms(self, corpus):
        student = mobilenet_v2("tiny", num_classes=4)
        teacher = make_teacher(student, num_classes=4)
        loss_fn = KDLoss(teacher, temperature=4.0, alpha=0.5)
        images = nn.Tensor(corpus.train.images[:4])
        loss, logits = loss_fn(student, images, corpus.train.labels[:4])
        assert logits.shape == (4, 4)
        assert loss.item() > 0
        loss.backward()
        assert any(p.grad is not None for p in student.parameters())
        # The teacher is never updated through the KD loss.
        assert all(p.grad is None for p in teacher.parameters())

    def test_tf_kd_virtual_teacher_distribution(self):
        loss_fn = TeacherFreeKDLoss(num_classes=5, correct_prob=0.8)
        probs = loss_fn._virtual_teacher(np.array([2]))
        assert probs[0, 2] == pytest.approx(0.8)
        assert probs.sum() == pytest.approx(1.0)

    def test_rocket_launching_loss_trains_both_networks(self, corpus):
        student = mobilenet_v2("tiny", num_classes=4)
        booster = make_teacher(student, num_classes=4)
        loss_fn = RocketLaunchingLoss(booster, hint_weight=0.5)
        images = nn.Tensor(corpus.train.images[:4])
        loss, _ = loss_fn(student, images, corpus.train.labels[:4])
        loss.backward()
        assert any(p.grad is not None for p in student.parameters())
        assert any(p.grad is not None for p in booster.parameters())

    def test_train_with_tf_kd_runs(self, corpus):
        history = train_with_tf_kd(mobilenet_v2("tiny", num_classes=4), corpus.train, corpus.val, FAST)
        assert len(history.val_accuracy) == 1

    def test_train_with_kd_accepts_pretrained_teacher(self, corpus):
        student = mobilenet_v2("tiny", num_classes=4)
        teacher = make_teacher(student, num_classes=4)
        history = train_with_kd(student, corpus.train, corpus.val, FAST, teacher=teacher)
        assert len(history.val_accuracy) == 1

    def test_train_with_rco_kd_distills_from_multiple_anchors(self, corpus):
        student = mobilenet_v2("tiny", num_classes=4)
        config = ExperimentConfig(epochs=2, batch_size=16, lr=0.02)
        history = train_with_rco_kd(
            student, corpus.train, corpus.val, config, num_anchors=2,
            teacher_config=ExperimentConfig(epochs=2, batch_size=16, lr=0.02),
        )
        # One stage per checkpoint (anchor + final), each contributing epochs.
        assert len(history.val_accuracy) >= 2

    def test_train_with_rocket_launching_runs(self, corpus):
        history = train_with_rocket_launching(
            mobilenet_v2("tiny", num_classes=4), corpus.train, corpus.val, FAST
        )
        assert len(history.val_accuracy) == 1
