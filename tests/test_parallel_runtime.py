"""Concurrency test layer for the parallel runtime.

The parallel runtime's correctness contract (see
:mod:`repro.runtime.parallel`) is *bit-identity by construction*: the tile
partition is a pure function of the shape, so every thread count executes
the same floating-point reductions.  Threading bugs in a NumPy runtime are
silent — torn output slices, stale workspace reuse, cross-thread arena
aliasing — so this file pins the contract from every side:

* bit-identity of parallel vs serial execution for **all registry models**
  in all three compile modes at thread counts 1 / 2 / 8;
* levelization: wave structure, and no two same-wave tasks overlapping in
  the arena plan (the lock-free-by-liveness invariant);
* race stress: one engine hammered from many client threads with mismatched
  shapes/batches, every response checksum-verified against a serial oracle;
* property-based determinism: same seed + same inputs ⇒ byte-identical
  outputs across repeated runs at ``threads=8``, for the engine API and a
  fleet replica;
* the thread-local workspace-cache contract in :mod:`repro.nn.functional`.
"""

import os
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

import repro
from repro import nn
from repro.models import available_models, create_model
from repro.nn import functional as F
from repro.runtime import (
    CompileOptions,
    ParallelExecutor,
    levelize,
    partition,
    resolve_threads,
    wave_table,
)
from repro.runtime.parallel import MAX_TILES, MIN_TILE, WaveTask, get_pool
from repro.utils import seed_everything

from test_quantized_runtime import _quantized_model

THREAD_COUNTS = (1, 2, 8)
RES = 12


def _fresh_model(name: str, num_classes: int = 8):
    seed_everything(7)
    model = create_model(name, num_classes=num_classes)
    model.eval()
    return model


def _batch(rng, n=8, res=RES):
    return rng.normal(size=(n, 3, res, res)).astype(np.float32)


# --------------------------------------------------------------------------- #
# tile partition + thread resolution
# --------------------------------------------------------------------------- #
class TestPartition:
    def test_partition_covers_disjointly_in_order(self):
        for total in (1, 2, 3, 4, 7, 8, 16, 63, 64, 100):
            slices = partition(total)
            assert slices[0].start == 0 and slices[-1].stop == total
            for prev, cur in zip(slices, slices[1:]):
                assert prev.stop == cur.start
            assert all(s.stop > s.start for s in slices)

    def test_partition_is_a_pure_function_of_the_total(self):
        # The worker count must never influence the tile set — this is the
        # root of the cross-thread-count bit-identity guarantee.
        assert partition(64) == partition(64)
        assert len(partition(64)) == MAX_TILES
        assert all((s.stop - s.start) >= MIN_TILE for s in partition(64))

    def test_small_batches_stay_whole(self):
        for total in range(0, 2 * MIN_TILE):
            assert partition(total) == [slice(0, total)]

    def test_resolve_threads(self, monkeypatch):
        monkeypatch.delenv("REPRO_THREADS", raising=False)
        assert resolve_threads(None) == 1
        assert resolve_threads(1) == 1
        assert resolve_threads(5) == 5
        assert resolve_threads(0) == max(1, os.cpu_count() or 1)
        assert resolve_threads("auto") == max(1, os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_THREADS", "3")
        assert resolve_threads(None) == 3
        assert resolve_threads(2) == 2  # explicit beats the environment
        monkeypatch.setenv("REPRO_THREADS", "max")
        assert resolve_threads(None) == max(1, os.cpu_count() or 1)
        with pytest.raises(ValueError):
            resolve_threads(-1)

    def test_executor_runs_waves_in_order_and_propagates_errors(self):
        executor = ParallelExecutor(threads=4)
        assert executor.run_wave([lambda i=i: i * i for i in range(20)]) == [
            i * i for i in range(20)
        ]

        def boom():
            raise RuntimeError("wave task failed")

        with pytest.raises(RuntimeError, match="wave task failed"):
            executor.run_wave([lambda: 1, boom, lambda: 3])

    def test_pool_is_persistent_and_shared(self):
        assert get_pool(1) is None
        assert get_pool(4) is get_pool(4)


# --------------------------------------------------------------------------- #
# bit-identity: parallel vs serial, every model x mode x thread count
# --------------------------------------------------------------------------- #
class TestBitIdentity:
    @pytest.mark.parametrize("name", available_models())
    def test_infer_bit_identical_across_thread_counts(self, rng, name):
        model = _fresh_model(name)
        x = _batch(rng)
        reference = repro.compile(model, threads=1).numpy_forward(x)
        for threads in THREAD_COUNTS[1:]:
            out = repro.compile(model, threads=threads).numpy_forward(x)
            np.testing.assert_array_equal(out, reference, err_msg=f"{name} threads={threads}")
        # The parallel plan stays numerically faithful to the untiled legacy
        # program (bit-exact tiling is only guaranteed across thread counts).
        untiled = repro.compile(model).numpy_forward(x)
        np.testing.assert_allclose(untiled, reference, rtol=1e-4, atol=1e-5)

    @pytest.mark.parametrize("name", available_models())
    def test_int8_bit_identical_including_untiled(self, rng, name):
        model = _quantized_model(name, rng, res=RES)
        x = rng.normal(0.2, 0.8, size=(8, 3, RES, RES)).astype(np.float32)
        # Integer accumulation is batch-size invariant, so for int8 even the
        # untiled engine must match the tiled ones bit-for-bit.
        reference = repro.compile(model, mode="int8", dw_kernel="einsum").numpy_forward(x)
        for threads in THREAD_COUNTS:
            qnet = repro.compile(model, mode="int8", dw_kernel="einsum", threads=threads)
            np.testing.assert_array_equal(
                qnet.numpy_forward(x), reference, err_msg=f"{name} threads={threads}"
            )

    @pytest.mark.parametrize("name", ["mobilenetv2-tiny", "mcunet"])
    def test_train_serial_fallback_is_bit_identical(self, rng, name):
        x = _batch(rng)
        labels = rng.integers(0, 8, size=len(x))

        def one_step(threads):
            seed_everything(11)
            model = create_model(name, num_classes=8)
            step = repro.compile(model, mode="train", threads=threads)
            loss, logits = step(x, labels)
            grads = [p.grad.copy() for p in model.parameters() if p.grad is not None]
            return loss, logits, grads

        loss_ref, logits_ref, grads_ref = one_step(None)
        for threads in THREAD_COUNTS[1:]:
            loss, logits, grads = one_step(threads)
            assert loss == loss_ref
            np.testing.assert_array_equal(logits, logits_ref)
            for got, ref in zip(grads, grads_ref):
                np.testing.assert_array_equal(got, ref)

    def test_train_records_serial_reason(self):
        model = _fresh_model("mobilenetv2-tiny")
        step = repro.compile(model, mode="train", threads=8)
        assert step.threads == 1
        assert "batchnorm batch statistics" in step.describe()

    def test_default_compile_stays_serial_untiled(self, monkeypatch):
        monkeypatch.delenv("REPRO_THREADS", raising=False)
        model = _fresh_model("mobilenetv2-tiny")
        net = repro.compile(model)
        assert net.threads == 1
        assert net.graph.meta.get("parallel") is None

    def test_repro_threads_env_flips_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "2")
        model = _fresh_model("mobilenetv2-tiny")
        net = repro.compile(model)
        assert net.threads == 2
        assert net.graph.meta["parallel"]["threads"] == 2

    def test_options_and_describe_surface(self):
        model = _fresh_model("mobilenetv2-tiny")
        net = repro.compile(model, options=CompileOptions(threads=2))
        assert net.threads == 2
        report = net.describe()
        assert "plan_parallel(threads=2)" in report
        assert "parallel: threads=2" in report
        assert "tiled" in report  # per-node tileability column


# --------------------------------------------------------------------------- #
# levelization + arena-plan disjointness
# --------------------------------------------------------------------------- #
class TestLevelization:
    def test_waves_expand_tileable_nodes_only(self):
        model = _fresh_model("mobilenetv2-tiny")
        net = repro.compile(model, threads=2)
        waves = levelize(net.graph, batch=16)
        assert all(isinstance(task, WaveTask) for wave in waves for task in wave)
        # Value-serial chain: distinct nodes never share a wave; every wave
        # holds the tiles of exactly one step.
        for wave in waves:
            assert len({id(task.node) for task in wave}) == 1
            assert [task.tile for task in wave] == list(range(len(wave)))
        assert max(len(wave) for wave in waves) == len(partition(16))

    def test_no_batch_means_degenerate_singleton_waves(self):
        model = _fresh_model("mobilenetv2-tiny")
        net = repro.compile(model, threads=2)
        assert all(len(wave) == 1 for wave in levelize(net.graph))

    @pytest.mark.parametrize("name", ["mobilenetv2-tiny", "mcunet"])
    def test_same_wave_tasks_never_overlap_in_the_arena(self, name):
        model = _fresh_model(name)
        net = repro.compile(model, threads=8)
        waves = wave_table(net.graph, (16, 3, RES, RES))  # raises on overlap
        bound = [t for wave in waves for t in wave if t.interval is not None]
        assert bound, "no tile tasks were bound to arena intervals"
        for wave in waves:
            spans = sorted(t.interval for t in wave if t.interval is not None)
            for (lo_a, hi_a), (lo_b, hi_b) in zip(spans, spans[1:]):
                assert hi_a <= lo_b, "same-wave tile tasks overlap in the arena"

    def test_residual_bodies_flatten_into_waves(self):
        model = _fresh_model("mcunet")
        net = repro.compile(model, threads=2)
        steps = [wave[0].step for wave in levelize(net.graph, batch=8)]
        assert "residual_add" in steps


# --------------------------------------------------------------------------- #
# race stress: mismatched shapes, many client threads, checksummed replies
# --------------------------------------------------------------------------- #
class TestRaceStress:
    CLIENTS = 6
    REQUESTS_PER_CLIENT = 8

    def _hammer(self, forward, requests, expected):
        failures = []
        barrier = threading.Barrier(self.CLIENTS)

        def client(worker: int) -> None:
            barrier.wait()
            for index in range(self.REQUESTS_PER_CLIENT):
                key = (worker, index)
                out = forward(requests[key])
                if out.tobytes() != expected[key]:
                    failures.append(key)

        with ThreadPoolExecutor(max_workers=self.CLIENTS) as pool:
            list(pool.map(client, range(self.CLIENTS)))
        assert not failures, f"torn/cross-talked outputs for requests {failures}"

    def _requests(self, rng):
        # Mismatched shapes and batch sizes per request: resolutions 12/16,
        # batches 1..8 — exercises the per-shape plan caches and the
        # workspace cache from many threads at once.
        requests = {}
        for worker in range(self.CLIENTS):
            for index in range(self.REQUESTS_PER_CLIENT):
                res = (12, 16)[(worker + index) % 2]
                n = 1 + (worker + 3 * index) % 8
                requests[(worker, index)] = rng.normal(
                    0.1, 0.7, size=(n, 3, res, res)
                ).astype(np.float32)
        return requests

    def test_int8_engine_survives_mismatched_concurrent_load(self, rng):
        model = _quantized_model("mobilenetv2-tiny", rng, res=16)
        qnet = repro.compile(model, mode="int8", dw_kernel="einsum", threads=2)
        requests = self._requests(rng)
        expected = {key: qnet.numpy_forward(x).tobytes() for key, x in requests.items()}
        self._hammer(qnet.numpy_forward, requests, expected)

    def test_float_engine_survives_mismatched_concurrent_load(self, rng):
        model = _fresh_model("mobilenetv2-tiny")
        net = repro.compile(model, threads=2)
        requests = self._requests(rng)
        expected = {key: net.numpy_forward(x).tobytes() for key, x in requests.items()}
        self._hammer(net.numpy_forward, requests, expected)


# --------------------------------------------------------------------------- #
# property-based determinism at threads=8
# --------------------------------------------------------------------------- #
class TestDeterminism:
    RUNS = 3

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_float_engine_byte_identical_across_runs(self, seed):
        model = _fresh_model("mobilenetv2-tiny")
        net = repro.compile(model, threads=8)
        x = np.random.default_rng(seed).normal(size=(16, 3, RES, RES)).astype(np.float32)
        outputs = {net.numpy_forward(x).tobytes() for _ in range(self.RUNS)}
        assert len(outputs) == 1

    @pytest.mark.parametrize("seed", [0, 1])
    def test_int8_engine_byte_identical_across_runs(self, rng, seed):
        model = _quantized_model("mobilenetv2-tiny", rng, res=RES)
        qnet = repro.compile(model, mode="int8", dw_kernel="einsum", threads=8)
        x = np.random.default_rng(seed).normal(0.2, 0.8, size=(16, 3, RES, RES)).astype(np.float32)
        outputs = {qnet.numpy_forward(x).tobytes() for _ in range(self.RUNS)}
        assert len(outputs) == 1

    def test_fleet_replica_byte_identical_across_runs(self):
        # The same builder the fleet's replica processes run, with the same
        # seed and inputs, must produce byte-identical replies every time —
        # nondeterministic reduction ordering in the threaded kernels would
        # show up here first.
        from repro.serve.fleet import model_backend

        x = np.random.default_rng(5).normal(size=(4, 3, RES, RES)).astype(np.float32)
        replies = set()
        for _ in range(self.RUNS):
            backend = model_backend(
                model_name="mobilenetv2-tiny", resolution=RES, engine="float", threads=8
            )
            assert getattr(backend.net, "threads", 1) == 8
            replies.add(backend.forward(x).tobytes())
        assert len(replies) == 1


# --------------------------------------------------------------------------- #
# workspace cache: explicitly thread-local (regression for latent hostility)
# --------------------------------------------------------------------------- #
class TestWorkspaceThreadLocal:
    def test_same_shape_yields_distinct_buffers_per_thread(self):
        shape, results = (4, 3, 9, 9), {}
        barrier = threading.Barrier(4)

        def grab(index: int) -> None:
            barrier.wait()
            buf = F._workspace(shape, np.float32, tag="test")
            buf.fill(float(index))
            # Keep the live buffer in ``results`` so ids cannot be recycled.
            results[index] = buf

        threads = [threading.Thread(target=grab, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ids = [id(buf) for buf in results.values()]
        assert len(set(ids)) == len(ids), "workspace buffer shared across threads"
        for index, buf in results.items():
            np.testing.assert_array_equal(buf, np.full(shape, float(index), np.float32))

    def test_clear_workspaces_only_touches_the_calling_thread(self):
        F._workspace((2, 2), np.float32, tag="keepme")
        before = len(F._workspaces())
        assert before >= 1

        def other_thread_clear():
            F._workspace((3, 3), np.float32, tag="other")
            F.clear_workspaces()

        t = threading.Thread(target=other_thread_clear)
        t.start()
        t.join()
        assert len(F._workspaces()) == before
        F.clear_workspaces()
        assert len(F._workspaces()) == 0

    def test_pad2d_reuse_is_safe_under_concurrency(self):
        # _pad2d(reuse=True) is the kernel-facing consumer of the cache: two
        # threads padding the same shape concurrently must get different
        # backing buffers with intact contents.
        x = np.arange(2 * 3 * 5 * 5, dtype=np.float32).reshape(2, 3, 5, 5)
        outputs = {}
        barrier = threading.Barrier(4)

        def pad(tag):
            barrier.wait()
            # Holding the returned view in ``outputs`` keeps each thread's
            # workspace alive, so equal addresses would mean real sharing.
            outputs[tag] = F._pad2d(x, 2, reuse=True)

        threads = [threading.Thread(target=pad, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        addresses = [padded.ctypes.data for padded in outputs.values()]
        assert len(set(addresses)) == len(addresses)
        reference = F._pad2d(x, 2, reuse=False)
        for padded in outputs.values():
            np.testing.assert_array_equal(padded, reference)
