"""SLO-driven autoscaling: controller law, supervisor elasticity, integration.

Three layers of coverage:

* Pure control-law tests drive :class:`AutoscaleController.step` with
  synthetic :class:`FleetStats` and a fake clock — hysteresis, cooldowns,
  restart awareness and the degradation ladder are asserted deterministically,
  no processes and no sleeps.
* Supervisor tests exercise the scale-up/scale-down state machine and the
  restart backoff/decay schedule through the injected ``clock`` with stubbed
  process handles.
* Integration tests run a real echo-backend fleet: resize under in-flight
  traffic, kill chaos composed with the controller, degradation shedding
  with retry-after hints — all holding the zero-lost invariant.
"""

import threading
import time

import numpy as np
import pytest

from repro.serve import (
    AutoscaleController,
    Fleet,
    FleetClient,
    FleetConfig,
    FleetStats,
    Overloaded,
    SLOConfig,
    parse_autoscale,
)
from repro.serve.loadgen import arrival_offsets, run_load
from repro.serve.supervisor import (
    DETACHED,
    DOWN,
    DRAINING,
    READY,
    ReplicaSpec,
    Supervisor,
)
from repro.serve.transport import _ClientRequest, error_for


# --------------------------------------------------------------------------- #
# shared fakes
# --------------------------------------------------------------------------- #
class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class FakeProcess:
    def __init__(self):
        self.alive = True
        self.killed = False
        self.pid = 4242

    def is_alive(self):
        return self.alive

    def kill(self):
        self.killed = True
        self.alive = False

    def join(self, timeout=None):
        pass


def fleet_config(**overrides) -> FleetConfig:
    defaults = dict(
        replicas=1,
        builder="repro.serve.fleet:echo_backend",
        builder_kwargs={"delay_ms": 3.0},
        heartbeat_interval=0.05,
        miss_threshold=5,
        restart_backoff_base=0.02,
        max_wait_ms=0.5,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


def make_supervisor(clock, **config_overrides):
    """A Supervisor over fake processes: spawn is recorded, never executed."""
    cfg = fleet_config(**config_overrides)
    spec = ReplicaSpec(
        index=0,
        replicas=cfg.resolved_max_replicas(),
        builder=cfg.builder,
        builder_kwargs={},
        input_shape=(3, 8, 8),
        input_elements=192,
        output_elements=4,
        slot_elements=196,
        n_slots=4,
        slots_name="unused",
        hb_name="unused",
        max_batch=4,
        max_wait_ms=1.0,
        heartbeat_interval=cfg.heartbeat_interval,
    )
    hb = np.zeros(cfg.resolved_max_replicas(), dtype=np.float64)
    messages, downs = [], []
    sup = Supervisor(
        cfg,
        spec,
        hb,
        post=lambda fn, *args: fn(*args),
        on_msg=lambda handle, msg: messages.append((handle.index, msg)),
        on_down=lambda handle, reason, assigned: downs.append((handle.index, reason)),
        clock=clock,
    )
    spawned = []
    sup.spawn = lambda handle: spawned.append((handle.index, clock.now))
    sup.messages, sup.downs, sup.spawned = messages, downs, spawned
    return sup


def ready_handle(sup, index=0, clock=None):
    handle = sup.handles[index]
    handle.state = READY
    handle.process = FakeProcess()
    now = clock.now if clock is not None else 0.0
    handle.ready_since = now
    sup.hb[index] = now
    return handle


# --------------------------------------------------------------------------- #
# supervisor: restart backoff + decay under an injected clock
# --------------------------------------------------------------------------- #
class TestSupervisorBackoffClock:
    def test_backoff_schedule_is_capped_exponential(self):
        clock = FakeClock(100.0)
        sup = make_supervisor(
            clock, restart_backoff_base=0.1, restart_backoff_cap=0.5, max_restarts=None
        )
        handle = ready_handle(sup, clock=clock)
        expected = [0.1, 0.2, 0.4, 0.5, 0.5]  # min(cap, base * 2**(failures-1))
        for backoff in expected:
            handle.state = READY
            handle.process = FakeProcess()
            sup.mark_down(handle, "test crash")
            assert handle.state == DOWN
            assert handle.restart_at == pytest.approx(clock.now + backoff)
            clock.advance(1.0)

    def test_restart_fires_only_when_due(self):
        clock = FakeClock(50.0)
        sup = make_supervisor(clock, restart_backoff_base=0.2)
        handle = ready_handle(sup, clock=clock)
        sup.mark_down(handle, "test crash")
        assert handle.restart_at == pytest.approx(50.2)
        clock.advance(0.1)
        sup.poll()
        assert sup.spawned == []  # backoff not elapsed: no respawn yet
        clock.advance(0.15)
        sup.poll()
        assert sup.spawned == [(0, clock.now)]

    def test_failure_count_decays_after_healthy_period(self):
        clock = FakeClock(10.0)
        sup = make_supervisor(clock, restart_reset_after=5.0)
        handle = ready_handle(sup, clock=clock)
        handle.failures = 3
        clock.advance(4.9)
        sup.hb[0] = clock.now  # fresh beat so the watchdog sees a live loop
        sup.poll()
        assert handle.failures == 3  # not healthy long enough yet
        clock.advance(0.2)
        sup.hb[0] = clock.now
        sup.poll()
        assert handle.failures == 0  # forgiven: backoff restarts from base

    def test_decay_resets_the_backoff_schedule(self):
        clock = FakeClock(0.0)
        sup = make_supervisor(
            clock, restart_backoff_base=0.1, restart_backoff_cap=2.0, restart_reset_after=1.0
        )
        handle = ready_handle(sup, clock=clock)
        for _ in range(3):
            handle.state = READY
            handle.process = FakeProcess()
            sup.mark_down(handle, "crash loop")
        assert handle.restart_at == pytest.approx(clock.now + 0.4)
        handle.state = READY
        handle.process = FakeProcess()
        handle.ready_since = clock.now
        clock.advance(1.5)  # healthy past restart_reset_after
        sup.hb[0] = clock.now
        sup.poll()
        assert handle.failures == 0
        sup.mark_down(handle, "first crash after recovery")
        assert handle.restart_at == pytest.approx(clock.now + 0.1)  # back to base


class TestSupervisorElasticity:
    def test_set_target_spawns_drains_and_cancels(self):
        clock = FakeClock()
        sup = make_supervisor(clock, replicas=2, max_replicas=3)
        first = ready_handle(sup, 0, clock)
        second = ready_handle(sup, 1, clock)
        assert sup.set_target(1) == 1
        assert second.state == DRAINING
        assert sup.draining() == 1
        # scale back up mid-drain: the replica never stopped, drain cancels
        assert sup.set_target(3) == 3
        assert second.state == READY
        assert sup.spawned == [(2, 0.0)]  # detached third handle gets a spawn
        assert first.state == READY

    def test_drained_replica_retires_once_empty(self):
        clock = FakeClock()
        sup = make_supervisor(clock, replicas=2, max_replicas=2)
        ready_handle(sup, 0, clock)
        second = ready_handle(sup, 1, clock)
        second.assigned[7] = object()  # in-flight work pins the drain
        sup.set_target(1)
        sup.poll()
        assert second.state == DRAINING and sup.retired == 0
        second.assigned.clear()
        sup.poll()
        assert second.state == DETACHED
        assert sup.retired == 1

    def test_death_while_draining_detaches_without_restart(self):
        clock = FakeClock()
        sup = make_supervisor(clock, replicas=2, max_replicas=2)
        ready_handle(sup, 0, clock)
        second = ready_handle(sup, 1, clock)
        second.assigned[1] = object()
        sup.set_target(1)
        second.process.alive = False
        sup.poll()  # crash detection requeues the work, but no restart slot
        assert second.state == DETACHED
        assert sup.downs and sup.downs[-1][0] == 1
        sup.poll()
        assert sup.spawned == []

    def test_scale_down_cancels_pending_restart(self):
        clock = FakeClock()
        sup = make_supervisor(clock, replicas=2, max_replicas=2)
        ready_handle(sup, 0, clock)
        second = ready_handle(sup, 1, clock)
        sup.mark_down(second, "crash")
        assert second.state == DOWN
        sup.set_target(1)
        assert second.state == DETACHED  # restart cancelled by the scale-down
        clock.advance(10.0)
        sup.poll()
        assert sup.spawned == []

    def test_late_ready_does_not_resurrect_draining_replica(self):
        clock = FakeClock()
        sup = make_supervisor(clock, replicas=2, max_replicas=2)
        ready_handle(sup, 0, clock)
        second = sup.handles[1]
        second.state = DRAINING
        second.generation = 1
        sup._handle_msg(1, 1, ("ready", 4242))
        assert second.state == DRAINING  # stays out of rotation


# --------------------------------------------------------------------------- #
# control law: pure decisions over synthetic stats
# --------------------------------------------------------------------------- #
class FakeFleet:
    def __init__(self, replicas=1, max_replicas=4):
        self.config = fleet_config(replicas=replicas, max_replicas=max_replicas)
        self.target = replicas
        self.resizes = []
        self.degradations = []

    def resize(self, n, reason="", timeout=None):
        self.target = max(1, min(self.config.resolved_max_replicas(), int(n)))
        self.resizes.append((self.target, reason))
        return self.target

    def set_degradation(self, level, **kwargs):
        self.degradations.append((level, kwargs))

    def stats(self):  # the law tests always pass stats explicitly
        raise AssertionError("step() should receive stats explicitly in these tests")


def make_controller(fleet=None, clock=None, **slo_overrides):
    defaults = dict(
        p99_target_ms=100.0,
        queue_target=4.0,
        min_replicas=1,
        max_replicas=4,
        window=1,
        up_threshold=1.0,
        down_threshold=0.45,
        up_cooldown=1.0,
        down_cooldown=2.0,
        max_step_up=2,
        ladder_patience=2,
        recover_patience=2,
        ladder_levels=3,
    )
    defaults.update(slo_overrides)
    fleet = fleet or FakeFleet()
    clock = clock or FakeClock()
    return AutoscaleController(fleet, SLOConfig(**defaults), clock=clock), fleet, clock


def stats_for(ctrl, pressure: float, *, via="queue", converging=False) -> FleetStats:
    """Synthesize FleetStats that produce exactly ``pressure`` in the law."""
    target = ctrl.target
    stats = FleetStats(ready=target - 1 if converging else target, target=target)
    if via == "queue":
        stats.inflight = int(round(pressure * ctrl.slo.queue_target * target))
    else:
        stats.latency_ms_p99 = pressure * ctrl.slo.p99_target_ms
    return stats


class TestControllerLaw:
    def test_pressure_is_max_of_queue_and_latency_terms(self):
        ctrl, _, _ = make_controller()
        stats = FleetStats(ready=1, target=1, inflight=2, latency_ms_p99=250.0)
        assert ctrl.pressure(stats) == pytest.approx(2.5)  # latency term wins
        stats = FleetStats(ready=1, target=1, inflight=20, latency_ms_p99=50.0)
        assert ctrl.pressure(stats) == pytest.approx(5.0)  # queue term wins
        assert ctrl.pressure(FleetStats(ready=1, target=1)) == 0.0  # idle, no signal

    def test_spike_scales_up_by_max_step(self):
        ctrl, fleet, clock = make_controller()
        assert ctrl.step(stats_for(ctrl, 3.0), clock.now) == "up"
        assert ctrl.target == 3 and fleet.target == 3  # 1 + max_step_up
        assert ctrl.counters.scale_ups == 1

    def test_up_cooldown_blocks_back_to_back_ups(self):
        ctrl, fleet, clock = make_controller()
        ctrl.step(stats_for(ctrl, 3.0), clock.now)
        clock.advance(0.5)  # < up_cooldown
        assert ctrl.step(stats_for(ctrl, 3.0), clock.now) == "hold"
        assert fleet.target == 3
        clock.advance(0.6)  # past the cooldown
        assert ctrl.step(stats_for(ctrl, 3.0), clock.now) == "up"
        assert fleet.target == 4  # clamped at max_replicas

    def test_hysteresis_band_holds_without_flapping(self):
        ctrl, fleet, clock = make_controller()
        for _ in range(20):
            clock.advance(5.0)  # every cooldown long expired
            assert ctrl.step(stats_for(ctrl, 0.7), clock.now) == "hold"
        assert fleet.resizes == []
        assert ctrl.counters.scale_ups == ctrl.counters.scale_downs == 0

    def test_idle_scales_down_one_step_per_cooldown(self):
        ctrl, fleet, clock = make_controller()
        ctrl.target = fleet.target = 3
        assert ctrl.step(stats_for(ctrl, 0.0), clock.now) == "down"
        assert fleet.target == 2  # one at a time: draining is the pricey direction
        clock.advance(0.5)
        assert ctrl.step(stats_for(ctrl, 0.0), clock.now) == "hold"  # cooling down
        clock.advance(2.0)
        assert ctrl.step(stats_for(ctrl, 0.0), clock.now) == "down"
        assert fleet.target == 1
        clock.advance(5.0)
        assert ctrl.step(stats_for(ctrl, 0.0), clock.now) == "hold"  # at the floor
        assert fleet.target == 1

    def test_restart_convergence_suppresses_decisions(self):
        ctrl, fleet, clock = make_controller()
        ctrl.target = fleet.target = 2
        hot_but_converging = stats_for(ctrl, 5.0, converging=True)
        for _ in range(10):
            clock.advance(5.0)
            assert ctrl.step(hot_but_converging, clock.now) == "converging"
        assert fleet.resizes == []  # a chaos kill must not trigger scale churn
        assert ctrl.counters.holds_converging == 10

    def test_ladder_engages_at_max_and_recovers_before_scale_down(self):
        ctrl, fleet, clock = make_controller()
        ctrl.target = fleet.target = 4  # pinned at max_replicas
        hot = lambda: stats_for(ctrl, 2.0)
        cool = lambda: stats_for(ctrl, 0.0)
        # sustained heat walks down the ladder, one level per patience streak
        for level in (1, 2, 3):
            clock.advance(1.0)
            assert ctrl.step(hot(), clock.now) == "hold"
            clock.advance(1.0)
            assert ctrl.step(hot(), clock.now) == "degrade"
            assert ctrl.level == level
        clock.advance(1.0)
        assert ctrl.step(hot(), clock.now) == "hold"  # floor of the ladder
        assert ctrl.level == 3
        # every degrade tightened the effective policy monotonically
        deadlines = [kw["deadline_ms"] for _, kw in fleet.degradations]
        assert deadlines == sorted(deadlines, reverse=True)
        assert all(kw["max_pending"] >= 1 for _, kw in fleet.degradations)
        # calm traffic recovers the ladder fully before any replica drains
        for level in (2, 1, 0):
            clock.advance(1.0)
            assert ctrl.step(cool(), clock.now) == "hold"
            clock.advance(1.0)
            assert ctrl.step(cool(), clock.now) == "recover"
            assert ctrl.level == level
        assert fleet.target == 4  # no scale-down while the ladder recovered
        clock.advance(5.0)
        assert ctrl.step(cool(), clock.now) == "down"
        assert fleet.degradations[-1] == (0, {})  # level 0 resets the policy

    def test_one_hot_sample_does_not_degrade(self):
        ctrl, fleet, clock = make_controller()
        ctrl.target = fleet.target = 4
        ctrl.step(stats_for(ctrl, 2.0), clock.now)  # streak 1 of patience 2
        clock.advance(1.0)
        ctrl.step(stats_for(ctrl, 0.7), clock.now)  # back in band: streak resets
        clock.advance(1.0)
        ctrl.step(stats_for(ctrl, 2.0), clock.now)
        assert ctrl.level == 0 and fleet.degradations == []

    def test_latency_term_triggers_scale_up(self):
        ctrl, fleet, clock = make_controller()
        assert ctrl.step(stats_for(ctrl, 2.0, via="latency"), clock.now) == "up"
        assert fleet.target == 3

    def test_window_smoothing_absorbs_single_spike(self):
        ctrl, fleet, clock = make_controller(window=4)
        for _ in range(3):
            ctrl.step(stats_for(ctrl, 0.6), clock.now)
            clock.advance(0.1)
        assert ctrl.step(stats_for(ctrl, 1.5), clock.now) == "hold"  # mean 0.825
        assert fleet.resizes == []

    def test_slo_ceiling_clamped_to_fleet_capacity(self):
        fleet = FakeFleet(replicas=1, max_replicas=2)
        ctrl, _, _ = make_controller(fleet=fleet, max_replicas=8)
        assert ctrl.slo.max_replicas == 2

    def test_state_and_describe_surface_counters(self):
        ctrl, _, clock = make_controller()
        ctrl.step(stats_for(ctrl, 3.0), clock.now)
        state = ctrl.state()
        assert state["scale_ups"] == 1 and state["target"] == 3
        assert state["history"][-1]["decision"] == "up"
        text = ctrl.describe()
        assert "target 3" in text and "1 ups" in text


class LadderFleet(FakeFleet):
    """A FakeFleet serving a 3-rung fidelity ladder."""

    fidelity_rungs = 3

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.fidelity_calls = []

    def set_fidelity(self, rung, reason="manual"):
        self.fidelity_calls.append((rung, reason))
        return rung


class TestFidelityBeforeShedding:
    """The controller walks the fidelity ladder before the shedding ladder."""

    def make_hot_controller(self):
        ctrl, fleet, clock = make_controller(
            fleet=LadderFleet(replicas=4, max_replicas=4)
        )
        return ctrl, fleet, clock

    def drive(self, ctrl, clock, pressure, steps):
        decisions = []
        for _ in range(steps):
            clock.advance(5.0)
            decisions.append(ctrl.step(stats_for(ctrl, pressure), clock.now))
        return decisions

    def test_ladder_depth_prepends_fidelity_rungs(self):
        ctrl, _, _ = self.make_hot_controller()
        assert ctrl.fidelity_rungs == 3
        assert ctrl.ladder_depth == 2 + ctrl.slo.ladder_levels
        plain, _, _ = make_controller()
        assert plain.fidelity_rungs == 1
        assert plain.ladder_depth == plain.slo.ladder_levels

    def test_drops_fidelity_before_shedding(self):
        ctrl, fleet, clock = self.make_hot_controller()
        self.drive(ctrl, clock, 3.0, 12)
        # first two degrades only switch rungs: no deadline tightening yet
        assert fleet.fidelity_calls[:2] == [(1, "autoscale"), (2, "autoscale")]
        assert fleet.degradations[0] == (0, {})
        assert fleet.degradations[1] == (0, {})
        # beyond the ladder floor the usual shedding levels begin at 1
        assert fleet.degradations[2][0] == 1
        assert fleet.degradations[2][1]["deadline_ms"] < fleet.config.default_deadline_ms
        assert ctrl.level == ctrl.ladder_depth

    def test_recovers_fidelity_before_scale_down(self):
        ctrl, fleet, clock = self.make_hot_controller()
        self.drive(ctrl, clock, 3.0, 12)
        fleet.resizes.clear()
        self.drive(ctrl, clock, 0.1, 10)
        # the ladder fully recovers (rung 0, shed level 0) before any resize
        assert fleet.fidelity_calls[-1] == (0, "autoscale")
        assert fleet.degradations[-1] == (0, {})
        assert ctrl.level == 0
        assert fleet.resizes == []
        self.drive(ctrl, clock, 0.1, 4)
        assert fleet.resizes  # only now does capacity drain

    def test_ladderless_fleet_unchanged(self):
        ctrl, fleet, clock = make_controller(fleet=FakeFleet(replicas=4, max_replicas=4))
        self.drive(ctrl, clock, 3.0, 4)
        assert not hasattr(fleet, "fidelity_calls")
        assert fleet.degradations[0][0] == 1  # level 1 sheds immediately

    def test_state_reports_ladder_shape(self):
        ctrl, _, _ = self.make_hot_controller()
        state = ctrl.state()
        assert state["fidelity_rungs"] == 3
        assert state["ladder_depth"] == ctrl.ladder_depth


class TestParseAutoscale:
    def test_disabled_specs(self):
        for spec in (None, "", "0", "off", "false", "none", "  "):
            assert parse_autoscale(spec) is None

    def test_enabled_defaults(self):
        for spec in ("1", "on", "true", "yes"):
            assert parse_autoscale(spec) == SLOConfig()

    def test_key_value_spec(self):
        slo = parse_autoscale("min=2, max=6, p99=80, queue=3, down=0.3")
        assert slo.min_replicas == 2
        assert slo.max_replicas == 6
        assert slo.p99_target_ms == 80.0
        assert slo.queue_target == 3.0
        assert slo.down_threshold == 0.3

    def test_passthrough_and_errors(self):
        slo = SLOConfig(max_replicas=7)
        assert parse_autoscale(slo) is slo
        with pytest.raises(ValueError, match="unknown autoscale key"):
            parse_autoscale("bogus=1")
        with pytest.raises(ValueError, match="key=value"):
            parse_autoscale("min")
        with pytest.raises(ValueError):
            SLOConfig(min_replicas=4, max_replicas=2)
        with pytest.raises(ValueError):
            SLOConfig(up_threshold=0.4, down_threshold=0.5)


# --------------------------------------------------------------------------- #
# transport: retry-after hints
# --------------------------------------------------------------------------- #
def bare_client(jitter=0.0):
    """A FleetClient shell with just the retry machinery initialized."""
    client = object.__new__(FleetClient)
    client._closed = False
    client._retries = 3
    client._backoff_base = 0.05
    client._backoff_cap = 2.0
    client._jitter = jitter
    client._rng = np.random.default_rng(0)
    client._lock = threading.Lock()
    client._retry_heap = []
    client._retry_seq = 0
    client._retry_wakeup = threading.Condition(client._lock)
    return client


class TestRetryAfterHint:
    def test_error_for_attaches_hint_from_meta(self):
        error = error_for("overloaded", "busy", {"retry_after_ms": 12.5, "level": 2})
        assert isinstance(error, Overloaded)
        assert error.retry_after_ms == 12.5
        assert error_for("overloaded", "busy").retry_after_ms is None
        assert Overloaded.retry_after_ms is None  # instance attr, class untouched
        assert error_for("overloaded", "busy", {"retry_after_ms": "junk"}).retry_after_ms is None

    def _scheduled_delay(self, client, error):
        request = _ClientRequest(1, b"", {}, timeout=60.0)
        request.attempts = 1
        with client._lock:
            client._retry_or_fail_locked(request, error)
        due, _, queued = client._retry_heap[-1]
        assert queued is request
        return due - time.monotonic()

    def test_client_paces_to_server_hint(self):
        client = bare_client()
        hinted = error_for("overloaded", "busy", {"retry_after_ms": 500.0})
        delay = self._scheduled_delay(client, hinted)
        assert 0.45 <= delay <= 0.51  # ~500 ms, not the 50 ms blind backoff

    def test_blind_backoff_without_hint(self):
        client = bare_client()
        delay = self._scheduled_delay(client, error_for("overloaded", "busy"))
        assert 0.04 <= delay <= 0.06  # backoff_base * 2**0

    def test_hint_capped_and_jittered(self):
        client = bare_client(jitter=0.5)
        huge = error_for("overloaded", "busy", {"retry_after_ms": 60_000.0})
        delay = self._scheduled_delay(client, huge)
        assert 1.9 <= delay <= 3.1  # capped at backoff_cap, then jittered up


# --------------------------------------------------------------------------- #
# loadgen: open-loop arrival schedules
# --------------------------------------------------------------------------- #
class TestArrivalOffsets:
    def test_constant_rate_and_determinism(self):
        offsets = arrival_offsets("constant", 100.0, 2.0)
        assert offsets == arrival_offsets("constant", 100.0, 2.0)
        assert len(offsets) == 200
        assert offsets == sorted(offsets)
        assert offsets[0] == 0.0 and offsets[-1] < 2.0
        gaps = np.diff(offsets)
        assert np.allclose(gaps, 0.01)

    def test_ramp_back_loads_the_schedule(self):
        offsets = np.asarray(arrival_offsets("ramp", 100.0, 2.0, ramp_from=0.25))
        first, second = np.sum(offsets < 1.0), np.sum(offsets >= 1.0)
        assert second > first * 1.3  # arrival density grows along the ramp

    def test_spike_concentrates_in_window(self):
        offsets = np.asarray(
            arrival_offsets("spike", 100.0, 2.0, spike_mult=4.0, spike_window=(0.4, 0.6))
        )
        inside = np.sum((offsets >= 0.8) & (offsets < 1.2))
        outside_rate = (len(offsets) - inside) / 1.6
        assert inside / 0.4 == pytest.approx(4 * outside_rate, rel=0.15)

    def test_step_doubles_after_the_step(self):
        offsets = np.asarray(arrival_offsets("step", 100.0, 2.0, step_at=0.5, step_mult=2.0))
        first, second = np.sum(offsets < 1.0), np.sum(offsets >= 1.0)
        assert second == pytest.approx(2 * first, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown traffic shape"):
            arrival_offsets("sawtooth", 10.0, 1.0)
        with pytest.raises(ValueError):
            arrival_offsets("constant", 0.0, 1.0)
        with pytest.raises(ValueError, match="spike_window"):
            arrival_offsets("spike", 10.0, 1.0, spike_window=(0.7, 0.2))
        with pytest.raises(ValueError, match="open-loop mode requires"):
            run_load(None, 10, mode="open")
        with pytest.raises(ValueError, match="unknown load mode"):
            run_load(None, 10, mode="poisson")


# --------------------------------------------------------------------------- #
# integration: a real fleet
# --------------------------------------------------------------------------- #
class TestFleetElasticity:
    def test_resize_up_and_down_preserves_zero_lost_under_traffic(self):
        shape = (3, 8, 8)
        with Fleet(fleet_config(replicas=1, max_replicas=3)) as fleet:
            fleet.wait_ready(replicas=1)
            with fleet.client() as client:
                futures = [client.submit(np.ones(shape, dtype=np.float32)) for _ in range(40)]
                assert fleet.resize(3, reason="test") == 3
                for future in futures:
                    future.result(timeout=15.0)
                fleet.wait_ready(replicas=3, timeout=15.0)
                futures = [client.submit(np.ones(shape, dtype=np.float32)) for _ in range(40)]
                assert fleet.resize(1, reason="test") == 1
                for future in futures:
                    future.result(timeout=15.0)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and fleet.stats().draining:
                time.sleep(0.02)
            stats = fleet.stats()
            assert stats.lost == 0
            assert stats.target == 1 and stats.draining == 0
            assert stats.scale_ups == 1 and stats.scale_downs == 1
            assert [e["to"] for e in stats.scale_events] == [3, 1]
            fleet.close()
            assert fleet.stats().lost == 0

    def test_resize_is_clamped_to_capacity(self):
        with Fleet(fleet_config(replicas=1, max_replicas=2)) as fleet:
            fleet.wait_ready(replicas=1)
            assert fleet.resize(99) == 2
            assert fleet.resize(0) == 1

    def test_max_replicas_validation(self):
        with pytest.raises(ValueError, match="max_replicas"):
            fleet_config(replicas=3, max_replicas=2)

    def test_degradation_sheds_with_retry_after_hint(self):
        config = fleet_config(
            replicas=1, builder_kwargs={"delay_ms": 40.0}, max_pending=16, max_batch=1
        )
        shape = (3, 8, 8)
        with Fleet(config) as fleet:
            fleet.wait_ready(replicas=1)
            fleet.set_degradation(2, deadline_ms=2_000.0, max_wait_ms=0.1, max_pending=1)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and fleet.stats().degradation_level != 2:
                time.sleep(0.01)
            stats = fleet.stats()
            assert stats.degradation_level == 2
            assert stats.effective_max_pending == 1
            assert stats.effective_deadline_ms == 2_000.0
            with fleet.client(retries=0) as client:
                futures = [client.submit(np.ones(shape, dtype=np.float32)) for _ in range(8)]
                sheds = []
                for future in futures:
                    try:
                        future.result(timeout=15.0)
                    except Overloaded as error:
                        sheds.append(error)
                assert sheds, "expected overload sheds at pending cap 1"
                assert all(e.retry_after_ms is not None and e.retry_after_ms > 0 for e in sheds)
            # level 0 restores the configured policy
            fleet.set_degradation(0)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and fleet.stats().degradation_level != 0:
                time.sleep(0.01)
            stats = fleet.stats()
            assert stats.effective_max_pending == config.max_pending
            assert stats.effective_deadline_ms == config.default_deadline_ms
            assert fleet.stats().lost == 0

    def test_stats_surface_queue_depth_and_percentiles(self):
        with Fleet(fleet_config(replicas=1, max_replicas=2)) as fleet:
            fleet.wait_ready(replicas=1)
            with fleet.client() as client:
                for _ in range(12):
                    client.predict(np.ones((3, 8, 8), dtype=np.float32), timeout=10.0)
                wire = client.server_stats()
            for key in (
                "queue_depth",
                "latency_ms_p50",
                "latency_ms_p95",
                "latency_ms_p99",
                "target",
                "max_replicas",
                "degradation_level",
                "scale_events",
            ):
                assert key in wire, key
            assert wire["latency_ms_p99"] is not None
            assert wire["latency_ms_p50"] <= wire["latency_ms_p99"]
            assert wire["max_replicas"] == 2
            for replica in wire["per_replica"]:
                assert "inflight" in replica and "latency_ms_p99" in replica
            stats = fleet.stats()
            assert "latency" in stats.summary() and "elasticity" in stats.summary()

    def test_controller_scales_up_on_spike_and_reconverges(self):
        config = fleet_config(
            replicas=1,
            max_replicas=3,
            builder_kwargs={"delay_ms": 15.0},
            max_batch=4,
            max_pending=64,
            stats_window_s=1.5,
        )
        slo = SLOConfig(
            p99_target_ms=60.0,
            queue_target=2.0,
            min_replicas=1,
            max_replicas=3,
            interval=0.1,
            window=2,
            up_cooldown=0.2,
            down_cooldown=0.4,
            ladder_patience=2,
            recover_patience=2,
        )
        with Fleet(config) as fleet:
            fleet.wait_ready(replicas=1)
            with AutoscaleController(fleet, slo) as controller:
                with fleet.client() as client:
                    report = run_load(
                        client,
                        0,
                        mode="open",
                        rate=150.0,
                        duration_s=4.0,
                        traffic="spike",
                        spike_mult=2.5,
                        spike_window=(0.2, 0.6),
                        timeout=20.0,
                        warmup=4,
                    )
                assert report.mode == "open" and report.offered > 0
                deadline = time.monotonic() + 25.0
                while time.monotonic() < deadline:
                    if controller.target == slo.min_replicas and controller.level == 0:
                        break
                    time.sleep(0.1)
                state = controller.state()
            fleet.close()
            stats = fleet.stats()
        assert state["scale_ups"] >= 1, state
        assert state["peak_target"] > 1
        assert state["target"] == slo.min_replicas  # idle reconvergence
        assert state["level"] == 0
        assert stats.lost == 0

    def test_controller_with_kill_chaos_converges_without_oscillation(self):
        config = fleet_config(
            replicas=2,
            max_replicas=3,
            chaos="kill:prob=1,warmup=20,max=1",
            builder_kwargs={"delay_ms": 2.0},
        )
        # SLO chosen so the offered load sits inside the hysteresis band:
        # pressure stays below up_threshold (24 inflight / (16 * 2) = 0.75)
        # and the only capacity change the run sees is the chaos kill —
        # which the controller must ride out without resizing at all
        slo = SLOConfig(
            p99_target_ms=5_000.0,
            queue_target=16.0,
            min_replicas=2,
            max_replicas=3,
            interval=0.05,
            window=2,
            down_cooldown=0.5,
        )
        shape = (3, 8, 8)
        with Fleet(config) as fleet:
            fleet.wait_ready(replicas=2)
            with AutoscaleController(fleet, slo) as controller:
                with fleet.client() as client:
                    for _ in range(10):
                        futures = [
                            client.submit(np.ones(shape, dtype=np.float32)) for _ in range(24)
                        ]
                        for future in futures:
                            future.result(timeout=20.0)
                # the kill fired; wait for the watchdog to restore capacity
                deadline = time.monotonic() + 20.0
                while time.monotonic() < deadline:
                    stats = fleet.stats()
                    if stats.restarts >= 1 and stats.ready >= stats.target:
                        break
                    time.sleep(0.05)
                stats = fleet.stats()
                state = controller.state()
            fleet.close()
            final = fleet.stats()
        assert final.restarts >= 1  # chaos actually killed a replica
        assert stats.ready >= stats.target == 2  # restored to target, not resized
        assert state["scale_ups"] == 0  # the requeue burst never read as load...
        assert state["scale_downs"] == 0  # ...and the dip never read as "idle"
        assert final.lost == 0
