"""Unit tests for the module-style losses and the new activations."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F

from helpers import make_tensor


def _logits(rng, n=6, classes=4):
    return nn.Tensor(rng.normal(size=(n, classes)).astype(np.float32), requires_grad=True)


class TestCrossEntropyLoss:
    def test_matches_functional(self, rng):
        logits = _logits(rng)
        labels = rng.integers(0, 4, size=6)
        module_loss = nn.CrossEntropyLoss()(logits, labels)
        functional_loss = F.cross_entropy(logits, labels)
        assert module_loss.item() == pytest.approx(functional_loss.item())

    def test_label_smoothing_increases_loss_on_confident_predictions(self):
        logits = nn.Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]], dtype=np.float32))
        labels = np.array([0, 1])
        plain = nn.CrossEntropyLoss()(logits, labels).item()
        smoothed = nn.CrossEntropyLoss(label_smoothing=0.2)(logits, labels).item()
        assert smoothed > plain

    def test_invalid_smoothing_rejected(self):
        with pytest.raises(ValueError):
            nn.CrossEntropyLoss(label_smoothing=1.0)

    def test_gradient_flows(self, rng):
        logits = _logits(rng)
        nn.CrossEntropyLoss()(logits, rng.integers(0, 4, size=6)).backward()
        assert logits.grad is not None


class TestSoftTargetCrossEntropy:
    def test_one_hot_targets_match_hard_labels(self, rng):
        logits = _logits(rng)
        labels = rng.integers(0, 4, size=6)
        soft = nn.SoftTargetCrossEntropy()(logits, F.one_hot(labels, 4)).item()
        hard = nn.CrossEntropyLoss()(logits, labels).item()
        assert soft == pytest.approx(hard, rel=1e-5)

    def test_mixture_targets_between_pure_losses(self, rng):
        logits = _logits(rng, n=4)
        a = F.one_hot(np.array([0, 1, 2, 3]), 4)
        b = F.one_hot(np.array([1, 2, 3, 0]), 4)
        mixed = nn.SoftTargetCrossEntropy()(logits, 0.5 * a + 0.5 * b).item()
        loss_a = nn.SoftTargetCrossEntropy()(logits, a).item()
        loss_b = nn.SoftTargetCrossEntropy()(logits, b).item()
        assert mixed == pytest.approx(0.5 * loss_a + 0.5 * loss_b, rel=1e-5)


class TestDistillationAndRegression:
    def test_kl_zero_for_identical_logits(self, rng):
        logits = _logits(rng)
        loss = nn.KLDivergenceLoss(temperature=2.0)(logits.detach(), logits)
        assert loss.item() == pytest.approx(0.0, abs=1e-5)

    def test_kl_requires_positive_temperature(self):
        with pytest.raises(ValueError):
            nn.KLDivergenceLoss(temperature=0.0)

    def test_mse_quadratic(self):
        pred = nn.Tensor(np.array([2.0, 4.0], dtype=np.float32), requires_grad=True)
        target = np.array([0.0, 0.0], dtype=np.float32)
        assert nn.MSELoss()(pred, target).item() == pytest.approx(10.0)

    def test_smooth_l1_below_beta_is_quadratic(self):
        pred = nn.Tensor(np.array([0.5], dtype=np.float32))
        assert nn.SmoothL1Loss(beta=1.0)(pred, np.array([0.0])).item() == pytest.approx(0.125)

    def test_smooth_l1_above_beta_is_linear(self):
        pred = nn.Tensor(np.array([3.0], dtype=np.float32))
        assert nn.SmoothL1Loss(beta=1.0)(pred, np.array([0.0])).item() == pytest.approx(2.5)

    def test_bce_with_logits_matches_closed_form(self):
        logits = nn.Tensor(np.array([0.0, 0.0], dtype=np.float32))
        targets = np.array([1.0, 0.0], dtype=np.float32)
        assert nn.BCEWithLogitsLoss()(logits, targets).item() == pytest.approx(np.log(2.0), rel=1e-4)


class TestFocalLoss:
    def test_gamma_zero_matches_cross_entropy(self, rng):
        logits = _logits(rng)
        labels = rng.integers(0, 4, size=6)
        focal = nn.FocalLoss(gamma=0.0)(logits, labels).item()
        ce = nn.CrossEntropyLoss()(logits, labels).item()
        assert focal == pytest.approx(ce, rel=1e-4)

    def test_down_weights_easy_examples(self):
        easy = nn.Tensor(np.array([[8.0, -8.0]], dtype=np.float32))
        hard = nn.Tensor(np.array([[0.5, -0.5]], dtype=np.float32))
        labels = np.array([0])
        loss = nn.FocalLoss(gamma=2.0)
        ce = nn.CrossEntropyLoss()
        easy_ratio = loss(easy, labels).item() / max(ce(easy, labels).item(), 1e-12)
        hard_ratio = loss(hard, labels).item() / ce(hard, labels).item()
        assert easy_ratio < hard_ratio

    def test_negative_gamma_rejected(self):
        with pytest.raises(ValueError):
            nn.FocalLoss(gamma=-1.0)


class TestNewActivations:
    def test_swish_matches_definition(self, rng):
        x = make_tensor((4, 3), rng)
        expected = x.numpy() / (1.0 + np.exp(-x.numpy()))
        np.testing.assert_allclose(nn.Swish()(x).numpy(), expected, rtol=1e-5)

    def test_hard_swish_limits(self):
        x = nn.Tensor(np.array([-10.0, 0.0, 10.0], dtype=np.float32))
        out = nn.HardSwish()(x).numpy()
        np.testing.assert_allclose(out, [0.0, 0.0, 10.0], atol=1e-5)

    def test_hard_sigmoid_range(self, rng):
        x = make_tensor((20,), rng)
        out = nn.HardSigmoid()(x).numpy()
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_gelu_close_to_exact(self):
        from scipy.stats import norm as gaussian

        x = np.linspace(-3, 3, 31).astype(np.float32)
        out = nn.GELU()(nn.Tensor(x)).numpy()
        exact = x * gaussian.cdf(x)
        np.testing.assert_allclose(out, exact, atol=2e-2)

    def test_prelu_learns_slope(self, rng):
        act = nn.PReLU(num_parameters=3)
        x = make_tensor((2, 3, 4, 4), rng)
        act(x).sum().backward()
        assert act.weight.grad is not None
        assert act.weight.grad.shape == (3,)

    def test_prelu_positive_part_is_identity(self):
        act = nn.PReLU()
        x = nn.Tensor(np.array([1.0, 2.0], dtype=np.float32))
        np.testing.assert_allclose(act(x).numpy(), [1.0, 2.0], atol=1e-6)

    def test_prelu_negative_part_scaled(self):
        act = nn.PReLU(initial_slope=0.1)
        x = nn.Tensor(np.array([-2.0], dtype=np.float32))
        np.testing.assert_allclose(act(x).numpy(), [-0.2], atol=1e-6)

    def test_tanh_module(self, rng):
        x = make_tensor((5,), rng)
        np.testing.assert_allclose(nn.Tanh()(x).numpy(), np.tanh(x.numpy()), rtol=1e-5)

    def test_softmax_sums_to_one(self, rng):
        x = make_tensor((4, 7), rng)
        out = nn.Softmax()(x).numpy()
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-5)
        assert (out >= 0).all()

    def test_softmax_gradient_flows(self, rng):
        x = make_tensor((2, 3), rng)
        (nn.Softmax()(x) * nn.Tensor(np.eye(3, dtype=np.float32)[:2])).sum().backward()
        assert x.grad is not None
