"""Unit tests for the experiment orchestrator and its on-disk result cache.

Covers the satellite requirements of the orchestrator PR: parallel execution
through the worker pool, cache hit/miss behaviour (content-addressed keys),
and resume-from-manifest.  Everything runs at :meth:`ExperimentScale.tiny`
with the cheap experiments so the whole module stays in the seconds range.
"""

import json

import numpy as np
import pytest

from repro.experiments import ExperimentScale, run_experiment
from repro.experiments.cache import Artifact, ResultCache, config_digest, source_fingerprint
from repro.experiments.orchestrator import MANIFEST_NAME, Orchestrator, build_plan
from repro.experiments.registry import StepContext, shared_step


@pytest.fixture
def tiny_scale():
    return ExperimentScale.tiny()


class TestResultCache:
    def test_digest_is_stable_and_order_insensitive(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2, "a": 1})
        assert config_digest("x") != config_digest("y")
        assert len(config_digest("x")) == 64

    def test_source_fingerprint_distinguishes_functions(self):
        assert source_fingerprint(config_digest) != source_fingerprint(source_fingerprint)

    def test_miss_then_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = config_digest("entry")
        assert cache.load(key) is None and not cache.has(key)
        state = {"model": {"w": np.arange(6, dtype=np.float32).reshape(2, 3)}}
        cache.store(key, Artifact(meta={"accuracy": 51.2, "rows": [1, 2]}, states=state))
        assert cache.has(key)
        loaded = cache.load(key)
        assert loaded.meta == {"accuracy": 51.2, "rows": [1, 2]}
        np.testing.assert_array_equal(loaded.states["model"]["w"], state["model"]["w"])

    def test_store_is_idempotent(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = config_digest("twice")
        cache.store(key, Artifact(meta={"v": 1}))
        cache.store(key, Artifact(meta={"v": 2}))  # discarded: same key == same content
        assert cache.load(key).meta == {"v": 1}

    def test_memoize_hit_and_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return Artifact(meta={"v": 7})

        _, hit = cache.memoize(config_digest("memo"), compute)
        assert not hit
        _, hit = cache.memoize(config_digest("memo"), compute)
        assert hit and len(calls) == 1

    def test_corrupt_states_evicted_and_repaired(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = config_digest("corrupt-states")
        cache.store(key, Artifact(meta={"v": 1}, states={"m": {"w": np.ones(2)}}))
        (cache._entry_dir(key) / "states.npz").write_bytes(b"not a zip")
        assert cache.load(key) is None  # corrupt entry -> evicted, miss
        cache.store(key, Artifact(meta={"v": 2}))  # ...and store can repair it
        assert cache.load(key).meta == {"v": 2}

    def test_corrupt_meta_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = config_digest("corrupt-meta")
        cache.store(key, Artifact(meta={"v": 1}))
        (cache._entry_dir(key) / "entry.json").write_text("{truncated", encoding="utf-8")
        assert cache.load(key) is None
        assert not cache.has(key)

    def test_clear_and_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(config_digest("s"), Artifact(meta={}))
        assert cache.stats()["entries"] == 1
        cache.clear()
        assert cache.stats() == {"entries": 0, "bytes": 0}


class TestPlan:
    def test_plan_includes_transitive_steps(self):
        plan = build_plan(["table4"])
        assert set(plan) == {
            "experiment/table4",
            "step/netbooster/mobilenetv2-tiny",
            "step/giant/mobilenetv2-tiny",
        }
        assert plan["step/netbooster/mobilenetv2-tiny"].deps == ("step/giant/mobilenetv2-tiny",)
        assert plan["experiment/table4"].deps == ("step/netbooster/mobilenetv2-tiny",)

    def test_analytic_experiment_has_no_deps(self):
        plan = build_plan(["cost"])
        assert set(plan) == {"experiment/cost"}

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            build_plan(["table99"])

    def test_unknown_shared_step_rejected(self):
        with pytest.raises(KeyError):
            shared_step("frobnicate/mobilenetv2-tiny")


class TestStepContext:
    def test_step_keys_depend_on_scale_and_name(self, tiny_scale):
        ctx_tiny = StepContext(tiny_scale)
        ctx_small = StepContext(ExperimentScale())
        name = "vanilla/mobilenetv2-tiny"
        assert ctx_tiny.step_key(name) == StepContext(tiny_scale).step_key(name)
        assert ctx_tiny.step_key(name) != ctx_small.step_key(name)
        assert ctx_tiny.step_key(name) != ctx_tiny.step_key("pretrain/mobilenetv2-tiny")

    def test_dep_uses_cache_across_contexts(self, tiny_scale, tmp_path):
        cache = ResultCache(tmp_path)
        first = StepContext(tiny_scale, cache).dep("vanilla/mobilenetv2-tiny")
        # A fresh context in (conceptually) another process hits the disk entry.
        second = StepContext(tiny_scale, cache).dep("vanilla/mobilenetv2-tiny")
        assert first.meta["history"]["val_accuracy"] == second.meta["history"]["val_accuracy"]
        assert cache.stats()["entries"] == 1


class TestOrchestrator:
    def test_serial_run_writes_reports_and_manifest(self, tiny_scale, tmp_path):
        out = tmp_path / "results"
        orchestrator = Orchestrator(tiny_scale, cache_dir=tmp_path / "cache", workers=1, out_dir=out)
        report = orchestrator.run(["cost"])
        assert report.failed_jobs == []
        assert [row.unit for row in report.rows_for("cost")] == ["MFLOPs"] * 4
        assert (out / "cost.json").is_file() and (out / "cost.md").is_file()
        assert (out / "REPORT.md").is_file()
        manifest = json.loads((out / MANIFEST_NAME).read_text())
        assert manifest["jobs"]["experiment/cost"]["status"] == "done"
        assert not manifest["jobs"]["experiment/cost"]["cached"]

    def test_second_run_is_pure_cache_replay(self, tiny_scale, tmp_path):
        kwargs = dict(cache_dir=tmp_path / "cache", workers=1, out_dir=tmp_path / "results")
        first = Orchestrator(tiny_scale, **kwargs).run(["cost"])
        second = Orchestrator(tiny_scale, **kwargs).run(["cost"])
        assert first.cached_jobs == 0
        assert second.cached_jobs == len(second.outcomes)
        assert [r.to_dict() for r in first.rows_for("cost")] == [
            r.to_dict() for r in second.rows_for("cost")
        ]

    def test_parallel_run_executes_dag(self, tiny_scale, tmp_path):
        out = tmp_path / "results"
        orchestrator = Orchestrator(tiny_scale, cache_dir=tmp_path / "cache", workers=2, out_dir=out)
        report = orchestrator.run(["cost", "table4"])
        assert report.failed_jobs == []
        assert set(report.outcomes) == {
            "experiment/cost",
            "experiment/table4",
            "step/giant/mobilenetv2-tiny",
            "step/netbooster/mobilenetv2-tiny",
        }
        settings = [row.setting for row in report.rows_for("table4")]
        assert settings == ["inverted_residual", "basic", "bottleneck"]
        # The shared-step artifacts landed in the same cache the registry uses.
        ctx = StepContext(tiny_scale, ResultCache(tmp_path / "cache"))
        assert ctx.cache.has(ctx.step_key("giant/mobilenetv2-tiny"))

    def test_resume_from_manifest_skips_done_jobs(self, tiny_scale, tmp_path):
        out = tmp_path / "results"
        kwargs = dict(cache_dir=tmp_path / "cache", out_dir=out)
        # "Interrupted" run: only the analytic experiment completed.
        Orchestrator(tiny_scale, workers=1, **kwargs).run(["cost"])
        manifest = json.loads((out / MANIFEST_NAME).read_text())
        assert set(manifest["jobs"]) == {"experiment/cost"}

        lines = []
        resumed = Orchestrator(tiny_scale, workers=1, progress=lines.append, **kwargs)
        report = resumed.run(["cost", "fig1a"])
        assert report.outcomes["experiment/cost"].cached
        assert not report.outcomes["experiment/fig1a"].cached
        assert any(line.startswith("[resume]") for line in lines)
        manifest = json.loads((out / MANIFEST_NAME).read_text())
        assert manifest["jobs"]["experiment/fig1a"]["status"] == "done"

    def test_cleared_cache_invalidates_manifest_resume(self, tiny_scale, tmp_path):
        out = tmp_path / "results"
        cache = ResultCache(tmp_path / "cache")
        kwargs = dict(cache_dir=tmp_path / "cache", workers=1, out_dir=out)
        Orchestrator(tiny_scale, **kwargs).run(["cost"])
        cache.clear()  # manifest still says done, but the artifacts are gone
        report = Orchestrator(tiny_scale, **kwargs).run(["cost"])
        assert not report.outcomes["experiment/cost"].cached
        assert report.failed_jobs == []

    def test_no_resume_re_dispatches_jobs(self, tiny_scale, tmp_path):
        kwargs = dict(cache_dir=tmp_path / "cache", workers=1, out_dir=tmp_path / "results")
        Orchestrator(tiny_scale, **kwargs).run(["cost"])
        lines = []
        report = Orchestrator(tiny_scale, progress=lines.append, **kwargs).run(["cost"], resume=False)
        # The job is re-dispatched (not skipped upfront) ...
        assert any(line.startswith("[run]") for line in lines)
        # ... but the worker honestly reports it resolved as a cache replay.
        assert report.outcomes["experiment/cost"].cached

    def test_registry_and_orchestrator_agree(self, tiny_scale, tmp_path):
        direct = run_experiment("cost", tiny_scale)
        report = Orchestrator(
            tiny_scale, cache_dir=tmp_path / "cache", workers=1, out_dir=tmp_path / "results"
        ).run(["cost"])
        assert [row.to_dict() for row in direct] == [row.to_dict() for row in report.rows_for("cost")]


class TestCliOrchestration:
    def test_run_subcommand(self, tmp_path, capsys, monkeypatch):
        from repro.experiments.__main__ import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        rc = main(["run", "cost", "--scale", "tiny", "--workers", "1", "--out", str(tmp_path / "results")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cache hits" in out and "measured=" in out
        assert (tmp_path / "results" / MANIFEST_NAME).is_file()

    def test_run_subcommand_rejects_unknown(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        assert main(["run", "table99", "--out", str(tmp_path)]) == 2
        assert "unknown experiment" in capsys.readouterr().err
