"""Unit tests for configuration, seeding, logging and checkpointing utilities."""

import logging

import numpy as np
import pytest

from repro import nn
from repro.models import mobilenet_v2
from repro.utils import (
    ExperimentConfig,
    get_logger,
    load_checkpoint,
    save_checkpoint,
    seed_everything,
)


class TestExperimentConfig:
    def test_defaults_match_paper_recipe(self):
        config = ExperimentConfig()
        assert config.momentum == pytest.approx(0.9)
        assert config.lr_schedule == "cosine"
        assert config.plt_decay_fraction == pytest.approx(0.2)

    def test_replace_returns_modified_copy(self):
        config = ExperimentConfig(epochs=10, lr=0.1)
        other = config.replace(epochs=3)
        assert other.epochs == 3
        assert other.lr == pytest.approx(0.1)
        assert config.epochs == 10  # original untouched

    def test_to_dict_round_trip(self):
        config = ExperimentConfig(epochs=7, batch_size=16, label_smoothing=0.1)
        rebuilt = ExperimentConfig(**config.to_dict())
        assert rebuilt == config


class TestSeeding:
    def test_model_initialisation_is_reproducible(self):
        seed_everything(123)
        first = mobilenet_v2("tiny", num_classes=4)
        seed_everything(123)
        second = mobilenet_v2("tiny", num_classes=4)
        for (_, a), (_, b) in zip(first.named_parameters(), second.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_different_seeds_give_different_weights(self):
        seed_everything(0)
        first = mobilenet_v2("tiny", num_classes=4)
        seed_everything(1)
        second = mobilenet_v2("tiny", num_classes=4)
        assert any(
            not np.allclose(a.data, b.data)
            for (_, a), (_, b) in zip(first.named_parameters(), second.named_parameters())
        )

    def test_returns_generator_seeded_deterministically(self):
        a = seed_everything(7).normal(size=4)
        b = seed_everything(7).normal(size=4)
        np.testing.assert_array_equal(a, b)


class TestLogging:
    def test_logger_is_singleton_per_name(self):
        assert get_logger("repro-test") is get_logger("repro-test")

    def test_logger_has_handler_and_level(self):
        logger = get_logger("repro-test-2", level=logging.DEBUG)
        assert logger.level == logging.DEBUG
        assert logger.handlers


class TestCheckpointing:
    def test_round_trip_restores_weights(self, tmp_path):
        model = mobilenet_v2("tiny", num_classes=4)
        path = str(tmp_path / "ckpt")
        save_checkpoint(model, path, metadata={"epoch": 3, "accuracy": 51.2})
        fresh = mobilenet_v2("tiny", num_classes=4)
        # Perturb so we can tell loading actually happened.
        for param in fresh.parameters():
            param.data += 1.0
        metadata = load_checkpoint(fresh, path)
        for (_, a), (_, b) in zip(model.named_parameters(), fresh.named_parameters()):
            np.testing.assert_allclose(a.data, b.data)
        assert int(metadata["epoch"]) == 3
        assert float(metadata["accuracy"]) == pytest.approx(51.2)

    def test_buffers_are_saved_and_restored(self, tmp_path):
        model = nn.Sequential(nn.Conv2d(3, 4, 3), nn.BatchNorm2d(4))
        model[1].running_mean[...] = 2.5
        path = str(tmp_path / "bn_ckpt")
        save_checkpoint(model, path)
        fresh = nn.Sequential(nn.Conv2d(3, 4, 3), nn.BatchNorm2d(4))
        load_checkpoint(fresh, path)
        np.testing.assert_allclose(fresh[1].running_mean, 2.5)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(mobilenet_v2("tiny", num_classes=4), str(tmp_path / "missing"))
