"""Unit tests for NetBooster's contraction: BN folding, kernel merging, exactness."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    ExpansionConfig,
    PLTSchedule,
    add_identity_to_kernel,
    contract_block,
    contract_network,
    densify_grouped_kernel,
    expand_network,
    fuse_conv_bn,
    merge_sequential_kernels,
)
from repro.core.expansion import (
    ExpandedBasicBlock,
    ExpandedBottleneck,
    ExpandedInvertedResidual,
)
from repro.eval import count_complexity, count_parameters
from repro.models import mobilenet_v2
from repro.nn import functional as F


def _randomise_bn(module: nn.Module, rng: np.random.Generator) -> None:
    """Give BatchNorms non-trivial statistics so folding is actually exercised."""
    for _, m in module.named_modules():
        if isinstance(m, nn.BatchNorm2d):
            m.running_mean[...] = rng.normal(0, 0.5, m.num_features)
            m.running_var[...] = rng.uniform(0.5, 1.5, m.num_features)
            m.weight.data[...] = rng.normal(1.0, 0.2, m.num_features)
            m.bias.data[...] = rng.normal(0, 0.2, m.num_features)


class TestFuseConvBn:
    def test_fused_conv_matches_conv_then_bn(self, rng):
        conv = nn.Conv2d(3, 5, 3, padding=1, bias=True)
        bn = nn.BatchNorm2d(5)
        _randomise_bn(bn, rng)
        bn.eval()
        x = nn.Tensor(rng.random((2, 3, 7, 7)).astype(np.float32))
        expected = bn(conv(x)).numpy()

        weight, bias = fuse_conv_bn(conv.weight.data, conv.bias.data, bn)
        fused = F.conv2d(x, nn.Tensor(weight), nn.Tensor(bias), stride=1, padding=1)
        np.testing.assert_allclose(fused.numpy(), expected, rtol=1e-4, atol=1e-5)

    def test_fuse_without_bias(self, rng):
        conv = nn.Conv2d(4, 4, 1, bias=False)
        bn = nn.BatchNorm2d(4)
        _randomise_bn(bn, rng)
        bn.eval()
        weight, bias = fuse_conv_bn(conv.weight.data, None, bn)
        assert weight.shape == conv.weight.shape
        assert bias.shape == (4,)


class TestDensifyGroupedKernel:
    def test_identity_for_single_group(self, rng):
        w = rng.random((4, 3, 1, 1)).astype(np.float32)
        assert densify_grouped_kernel(w, 1) is w

    def test_depthwise_densification_preserves_function(self, rng):
        channels = 6
        w = rng.random((channels, 1, 3, 3)).astype(np.float32)
        dense = densify_grouped_kernel(w, channels)
        assert dense.shape == (channels, channels, 3, 3)
        x = nn.Tensor(rng.random((2, channels, 5, 5)).astype(np.float32))
        grouped_out = F.conv2d(x, nn.Tensor(w), padding=1, groups=channels)
        dense_out = F.conv2d(x, nn.Tensor(dense), padding=1, groups=1)
        np.testing.assert_allclose(grouped_out.numpy(), dense_out.numpy(), rtol=1e-5, atol=1e-6)

    def test_two_group_densification(self, rng):
        w = rng.random((4, 2, 1, 1)).astype(np.float32)
        dense = densify_grouped_kernel(w, 2)
        x = nn.Tensor(rng.random((1, 4, 3, 3)).astype(np.float32))
        np.testing.assert_allclose(
            F.conv2d(x, nn.Tensor(w), groups=2).numpy(),
            F.conv2d(x, nn.Tensor(dense)).numpy(),
            rtol=1e-5,
            atol=1e-6,
        )


class TestMergeSequentialKernels:
    def test_pointwise_chain_exact(self, rng):
        w1 = rng.random((8, 3, 1, 1)).astype(np.float32)
        b1 = rng.random(8).astype(np.float32)
        w2 = rng.random((5, 8, 1, 1)).astype(np.float32)
        b2 = rng.random(5).astype(np.float32)
        merged_w, merged_b = merge_sequential_kernels(w1, b1, w2, b2)
        assert merged_w.shape == (5, 3, 1, 1)

        x = nn.Tensor(rng.random((2, 3, 6, 6)).astype(np.float32))
        expected = F.conv2d(F.conv2d(x, nn.Tensor(w1), nn.Tensor(b1)), nn.Tensor(w2), nn.Tensor(b2))
        merged = F.conv2d(x, nn.Tensor(merged_w), nn.Tensor(merged_b))
        np.testing.assert_allclose(merged.numpy(), expected.numpy(), rtol=1e-4, atol=1e-5)

    def test_general_kernel_sizes_match_paper_formula(self, rng):
        """Merging a 3x3 then a 3x3 conv gives a 5x5 conv (Eq. 3-4).

        The merge is exact when the second convolution reads no zero-padded
        positions of the intermediate map (always true for the 1x1 chains
        NetBooster builds); here the second convolution uses padding 0.
        """
        w1 = rng.random((4, 2, 3, 3)).astype(np.float32)
        w2 = rng.random((3, 4, 3, 3)).astype(np.float32)
        merged_w, merged_b = merge_sequential_kernels(w1, None, w2, None)
        assert merged_w.shape == (3, 2, 5, 5)
        np.testing.assert_allclose(merged_b, np.zeros(3), atol=1e-7)

        x = nn.Tensor(rng.random((1, 2, 9, 9)).astype(np.float32))
        expected = F.conv2d(F.conv2d(x, nn.Tensor(w1), padding=1), nn.Tensor(w2), padding=0)
        merged = F.conv2d(x, nn.Tensor(merged_w), padding=1)
        np.testing.assert_allclose(merged.numpy(), expected.numpy(), rtol=1e-3, atol=1e-4)

    def test_mixed_kernel_sizes(self, rng):
        w1 = rng.random((4, 2, 1, 1)).astype(np.float32)
        w2 = rng.random((3, 4, 3, 3)).astype(np.float32)
        merged_w, _ = merge_sequential_kernels(w1, None, w2, None)
        assert merged_w.shape == (3, 2, 3, 3)
        x = nn.Tensor(rng.random((1, 2, 7, 7)).astype(np.float32))
        expected = F.conv2d(F.conv2d(x, nn.Tensor(w1)), nn.Tensor(w2), padding=1)
        merged = F.conv2d(x, nn.Tensor(merged_w), padding=1)
        np.testing.assert_allclose(merged.numpy(), expected.numpy(), rtol=1e-4, atol=1e-5)

    def test_channel_mismatch_raises(self, rng):
        w1 = rng.random((4, 2, 1, 1)).astype(np.float32)
        w2 = rng.random((3, 5, 1, 1)).astype(np.float32)
        with pytest.raises(ValueError):
            merge_sequential_kernels(w1, None, w2, None)


class TestAddIdentity:
    def test_identity_addition_equals_residual(self, rng):
        w = rng.random((4, 4, 1, 1)).astype(np.float32)
        with_identity = add_identity_to_kernel(w)
        x = nn.Tensor(rng.random((2, 4, 5, 5)).astype(np.float32))
        expected = F.conv2d(x, nn.Tensor(w)) + x
        np.testing.assert_allclose(
            F.conv2d(x, nn.Tensor(with_identity)).numpy(), expected.numpy(), rtol=1e-5, atol=1e-6
        )

    def test_requires_square_channels(self, rng):
        with pytest.raises(ValueError):
            add_identity_to_kernel(rng.random((3, 4, 1, 1)).astype(np.float32))

    def test_requires_odd_kernel(self, rng):
        with pytest.raises(ValueError):
            add_identity_to_kernel(rng.random((3, 3, 2, 2)).astype(np.float32))


class TestContractBlock:
    @pytest.mark.parametrize(
        "block_cls", [ExpandedInvertedResidual, ExpandedBasicBlock, ExpandedBottleneck]
    )
    @pytest.mark.parametrize("channels", [(6, 10), (8, 8)])
    def test_contraction_is_exact_for_linear_blocks(self, block_cls, channels, rng):
        in_c, out_c = channels
        block = block_cls(in_c, out_c, expansion_ratio=4)
        _randomise_bn(block, rng)
        block.eval()
        for act in block.decayable_activations():
            act.set_alpha(1.0)
        x = nn.Tensor(rng.random((3, in_c, 7, 7)).astype(np.float32))
        expected = block(x).numpy()
        conv = contract_block(block)
        conv.eval()
        np.testing.assert_allclose(conv(x).numpy(), expected, rtol=1e-3, atol=1e-4)
        assert conv.kernel_size == 1
        assert conv.in_channels == in_c and conv.out_channels == out_c

    def test_contract_refuses_nonlinear_block(self):
        block = ExpandedInvertedResidual(4, 4)
        with pytest.raises(RuntimeError):
            contract_block(block)

    def test_force_contraction_without_linearity(self):
        block = ExpandedInvertedResidual(4, 4)
        conv = contract_block(block, require_linear=False)
        assert isinstance(conv, nn.Conv2d)


class TestContractNetwork:
    def _linearised_giant(self, rng, fraction=0.5):
        model = mobilenet_v2("tiny", num_classes=8)
        giant, records = expand_network(model, ExpansionConfig(fraction=fraction))
        # Populate BN statistics with a few training-mode forward passes.
        giant.train()
        x = nn.Tensor(rng.random((8, 3, 24, 24)).astype(np.float32))
        for _ in range(3):
            giant(x)
        PLTSchedule(giant, total_steps=1).finalize()
        return model, giant, records

    def test_contracted_model_matches_giant_outputs(self, rng):
        model, giant, records = self._linearised_giant(rng)
        giant.eval()
        x = nn.Tensor(rng.random((4, 3, 24, 24)).astype(np.float32))
        expected = giant(x).numpy()
        contracted = contract_network(giant, records)
        contracted.eval()
        np.testing.assert_allclose(contracted(x).numpy(), expected, rtol=1e-3, atol=1e-4)

    def test_contracted_model_restores_original_complexity_exactly(self, rng):
        model, giant, records = self._linearised_giant(rng, fraction=1.0)
        contracted = contract_network(giant, records)
        original = count_complexity(model, (3, 24, 24))
        restored = count_complexity(contracted, (3, 24, 24))
        assert restored.flops == original.flops
        assert restored.params == original.params

    def test_contraction_requires_linearity_by_default(self, rng):
        model = mobilenet_v2("tiny", num_classes=8)
        giant, records = expand_network(model, ExpansionConfig(fraction=0.5))
        with pytest.raises(RuntimeError):
            contract_network(giant, records)

    def test_contracting_twice_fails_cleanly(self, rng):
        _, giant, records = self._linearised_giant(rng)
        contracted = contract_network(giant, records)
        with pytest.raises(TypeError):
            contract_network(contracted, records)

    def test_giant_left_intact_unless_inplace(self, rng):
        _, giant, records = self._linearised_giant(rng)
        params_before = count_parameters(giant)
        contract_network(giant, records)
        assert count_parameters(giant) == params_before
        contract_network(giant, records, inplace=True)
        assert count_parameters(giant) < params_before
