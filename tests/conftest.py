"""Shared fixtures for the test suite.

The reusable helper functions (``make_tensor``, ``numerical_gradient``,
``assert_gradients_close``) live in :mod:`helpers` — importing them from a
conftest module is ambiguous once more than one conftest exists on
``sys.path`` (the benchmark suite has its own).
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

from repro.utils import seed_everything

# Guarantee `from helpers import ...` resolves to tests/helpers.py no matter
# which rootdir pytest picked.
sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture(autouse=True)
def _seed_everything():
    """Make every test deterministic."""
    seed_everything(0)
    yield


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
