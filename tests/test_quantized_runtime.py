"""Tests for the true-integer (int8) inference engine and its memory planner."""

import numpy as np
import pytest

from repro import nn
from repro.compress import QuantizationSpec, calibrate, quantize_model
from repro.compress.quantization import QuantizedConv2d, QuantizedLinear, _QuantizedWrapper
from repro.eval.deployment import peak_activation_memory
from repro.models import create_model
from repro.models.blocks import ConvBNAct
from repro.runtime import (
    QuantCompileError,
    QuantConvOp,
    QuantLinearOp,
    QuantizedNet,
    compile_net,
    compile_quantized,
)
from repro.runtime import compiler as compiler_mod


def _randomize_bn_stats(model: nn.Module, rng: np.random.Generator) -> None:
    for _, module in model.named_modules():
        if isinstance(module, nn.BatchNorm2d):
            module.running_mean[...] = rng.normal(0.0, 0.2, size=module.num_features)
            module.running_var[...] = rng.uniform(0.5, 1.5, size=module.num_features)


def _quantized_model(name: str, rng, num_classes=8, res=20, calib_batches=2, **calib_kwargs):
    model = create_model(name, num_classes=num_classes)
    _randomize_bn_stats(model, rng)
    model.eval()
    quantize_model(model)
    batches = [
        rng.normal(0.2, 0.8, size=(8, 3, res, res)).astype(np.float32)
        for _ in range(calib_batches)
    ]
    calibrate(model, batches, **calib_kwargs)
    return model


def _dequant_tolerance(model: nn.Module, drift_steps: float = 3.0) -> float:
    """Worst-case logit change from ``drift_steps`` grid steps at the classifier.

    The engine and the fake-quant oracle may legitimately differ by a couple
    of integer steps per activation (tie-breaks, on-grid pooling/residual
    rounding); the resulting logit difference is bounded by the classifier's
    input step size times the L1 norm of its dequantized integer weights.
    """
    classifier = next(
        m for _, m in model.named_modules() if isinstance(m, QuantizedLinear)
    )
    in_scale, _ = classifier.input_qparams()
    w_q = np.abs(classifier.weight_q.astype(np.float64))
    w_scale = np.atleast_1d(np.asarray(classifier.weight_scale, dtype=np.float64))
    row_l1 = (w_q.sum(axis=1) * (w_scale if w_scale.size > 1 else w_scale[0])).max()
    return drift_steps * in_scale * row_l1


class TestInt8Parity:
    """Engine logits must match the fake-quant oracle within dequant tolerance."""

    @pytest.mark.parametrize("name", ["mobilenetv2-tiny", "mcunet"])
    @pytest.mark.parametrize("batch", [1, 8])
    def test_matches_fake_quant_oracle(self, rng, name, batch):
        model = _quantized_model(name, rng)
        x = rng.normal(0.2, 0.8, size=(batch, 3, 20, 20)).astype(np.float32)
        with nn.no_grad():
            oracle = model(nn.Tensor(x)).numpy()
        engine = compile_quantized(model)
        out = engine.numpy_forward(x)
        assert out.shape == oracle.shape
        tolerance = _dequant_tolerance(model)
        assert float(np.abs(out - oracle).max()) <= tolerance
        # and the ranking agrees for a comfortable majority of samples
        agree = (out.argmax(axis=1) == oracle.argmax(axis=1)).mean()
        assert agree >= 0.5

    def test_every_registry_model_within_tolerance(self, rng):
        """The engine tracks the oracle on every model quantize_model supports."""
        from repro.models import available_models

        for name in available_models():
            model = _quantized_model(name, rng, res=16)
            x = rng.normal(0.2, 0.8, size=(2, 3, 16, 16)).astype(np.float32)
            with nn.no_grad():
                oracle = model(nn.Tensor(x)).numpy()
            out = compile_quantized(model).numpy_forward(x)
            assert float(np.abs(out - oracle).max()) <= _dequant_tolerance(model), name

    def test_all_dw_kernel_variants_bit_identical(self, rng):
        model = _quantized_model("mobilenetv2-tiny", rng)
        x = rng.normal(0.2, 0.8, size=(4, 3, 20, 20)).astype(np.float32)
        reference = compile_quantized(model, dw_kernel="einsum").numpy_forward(x)
        for variant in ("flat", "stacked", "offsets", "auto"):
            out = compile_quantized(model, dw_kernel=variant).numpy_forward(x)
            np.testing.assert_array_equal(out, reference, err_msg=variant)

    def test_bitwise_batch_invariance(self, rng):
        """Per-sample results never depend on batch assembly — the property
        padded dynamic batching relies on."""
        model = _quantized_model("mobilenetv2-tiny", rng)
        engine = compile_quantized(model)
        x = rng.normal(0.2, 0.8, size=(6, 3, 20, 20)).astype(np.float32)
        batched = engine.numpy_forward(x)
        for i in range(x.shape[0]):
            single = engine.numpy_forward(x[i : i + 1])
            np.testing.assert_array_equal(single[0], batched[i])
        # padding with zero rows must not change the real rows either
        padded = np.concatenate([x[:3], np.zeros_like(x[:3])])
        np.testing.assert_array_equal(engine.numpy_forward(padded)[:3], batched[:3])

    def test_conv_bn_relu6_block_exact(self, rng):
        """A single quantized ConvBNAct matches the oracle bit-for-bit (the
        only rounding happens at the shared output quantization)."""
        block = ConvBNAct(3, 8, kernel_size=3, stride=1)
        _randomize_bn_stats(block, rng)
        block.eval()
        quantize_model(block)
        calibrate(block, [rng.normal(0.0, 1.0, size=(4, 3, 10, 10)).astype(np.float32)])
        x = rng.normal(0.0, 1.0, size=(2, 3, 10, 10)).astype(np.float32)
        with nn.no_grad():
            oracle = block(nn.Tensor(x)).numpy()
        out = compile_quantized(block).numpy_forward(x)
        np.testing.assert_allclose(out, oracle, rtol=1e-4, atol=1e-5)

    def test_tensor_in_tensor_out(self, rng):
        model = _quantized_model("mobilenetv2-tiny", rng)
        engine = compile_quantized(model)
        out = engine(nn.Tensor(rng.normal(size=(1, 3, 20, 20)).astype(np.float32)))
        assert isinstance(out, nn.Tensor)
        assert not out.requires_grad


class TestIntegerLowering:
    def test_weights_stored_as_int8(self, rng):
        model = _quantized_model("mobilenetv2-tiny", rng)
        wrappers = [m for _, m in model.named_modules() if isinstance(m, _QuantizedWrapper)]
        assert wrappers
        for wrapper in wrappers:
            assert wrapper.weight_q.dtype == np.int8
            assert wrapper.weight_scale.dtype == np.float32
            # dequantized integer weights reproduce the fake-quant float weights
            shape = [1] * wrapper.weight_q.ndim
            shape[0] = -1
            scale = np.asarray(wrapper.weight_scale).reshape(
                shape if np.asarray(wrapper.weight_scale).size > 1 else [1] * wrapper.weight_q.ndim
            )
            restored = wrapper.weight_q.astype(np.float32) * scale
            np.testing.assert_allclose(restored, wrapper.wrapped.weight.data, rtol=1e-5, atol=1e-6)

    def test_engine_has_no_eager_fallback_for_registry_models(self, rng):
        for name in ("mobilenetv2-tiny", "mcunet"):
            model = _quantized_model(name, rng)
            engine = compile_quantized(model)
            engine.plan((1, 3, 20, 20))
            assert "eager" not in engine.ops
            assert sum(op.startswith("qconv") for op in engine.ops) > 10

    def test_compile_net_routes_wrappers_to_integer_ops(self, rng):
        """The float compiler must not silently drop calibrated wrappers to
        the eager fallback."""
        model = _quantized_model("mobilenetv2-tiny", rng)
        program = compile_net(model)._program

        kinds = []

        def walk(op):
            kinds.append(type(op).__name__)
            # ParallelChain (the $REPRO_THREADS>1 program) exposes the same
            # flat .ops list as ChainOp, so both recurse identically.
            if isinstance(op, (compiler_mod.ChainOp, compiler_mod.ParallelChain)):
                for child in op.ops:
                    walk(child)
            if isinstance(op, compiler_mod.ResidualOp):
                walk(op.body)

        walk(program)
        n_wrappers = sum(
            1 for _, m in model.named_modules() if isinstance(m, _QuantizedWrapper)
        )
        assert "EagerOp" not in kinds
        assert kinds.count("QuantConvOp") + kinds.count("QuantLinearOp") == n_wrappers

    def test_compile_net_integer_ops_match_eager(self, rng):
        model = _quantized_model("mcunet", rng)
        x = rng.normal(0.2, 0.8, size=(3, 3, 20, 20)).astype(np.float32)
        with nn.no_grad():
            eager = model(nn.Tensor(x)).numpy()
        out = compile_net(model).numpy_forward(x)
        np.testing.assert_allclose(out, eager, rtol=1e-4, atol=1e-5)

    def test_uncalibrated_wrapper_stays_eager_in_compile_net(self, rng):
        from repro.runtime import trace
        from repro.runtime.compiler import _op_from_node

        conv = nn.Conv2d(3, 4, 3, padding=1)
        wrapper = QuantizedConv2d(conv, QuantizationSpec())
        graph = trace(wrapper)
        assert graph.kinds() == ["qconv"]  # still observing, but typed at trace
        op = _op_from_node(graph.nodes[0])
        assert isinstance(op, compiler_mod.EagerOp)

    def test_uncalibrated_model_rejected_by_compile_quantized(self):
        model = create_model("mobilenetv2-tiny", num_classes=4)
        quantize_model(model)  # no calibrate()
        with pytest.raises(QuantCompileError):
            compile_quantized(model)

    def test_unquantized_model_rejected(self):
        model = create_model("mobilenetv2-tiny", num_classes=4)
        with pytest.raises(QuantCompileError):
            compile_quantized(model)

    def test_mixed_model_with_skipped_layers_still_correct(self, rng):
        """Skip-prefixed (unquantized) layers run in the float domain."""
        model = create_model("mobilenetv2-tiny", num_classes=5)
        _randomize_bn_stats(model, rng)
        model.eval()
        quantize_model(model, skip=("classifier",))
        calibrate(model, [rng.normal(0.2, 0.8, size=(6, 3, 16, 16)).astype(np.float32)])
        x = rng.normal(0.2, 0.8, size=(2, 3, 16, 16)).astype(np.float32)
        with nn.no_grad():
            oracle = model(nn.Tensor(x)).numpy()
        out = compile_quantized(model).numpy_forward(x)
        assert out.shape == oracle.shape
        assert float(np.abs(out - oracle).max()) <= 0.5  # loose: float head amplifies nothing

    def test_invalid_dw_kernel_rejected(self, rng):
        model = _quantized_model("mobilenetv2-tiny", rng)
        with pytest.raises(ValueError):
            compile_quantized(model, dw_kernel="nope")


class TestMemoryPlanner:
    def _pointwise_chain(self, rng, channels=(8, 16, 12, 4), res=6):
        layers = []
        for c_in, c_out in zip(channels[:-1], channels[1:]):
            layers.append(nn.Conv2d(c_in, c_out, 1))
        model = nn.Sequential(*layers)
        model.eval()
        quantize_model(model)
        calibrate(
            model,
            [rng.normal(0.0, 1.0, size=(2, channels[0], res, res)).astype(np.float32)],
        )
        return model, channels, res

    def test_chain_peak_matches_deployment_accounting(self, rng):
        """For a padding-free chain the planner's peak working set equals the
        analytic MCU approximation max(input + output) exactly."""
        model, channels, res = self._pointwise_chain(rng)
        engine = compile_quantized(model)
        report = engine.memory_report((1, channels[0], res, res))
        analytic = peak_activation_memory(model, (channels[0], res, res), bytes_per_element=1)
        assert report.peak_value_int8_bytes == analytic

    def test_arena_reuses_buffers(self, rng):
        model, channels, res = self._pointwise_chain(rng)
        engine = compile_quantized(model)
        report = engine.memory_report((1, channels[0], res, res))
        total_requested = sum(b.size for b in report.buffers)
        assert report.arena_elements < total_requested

    def test_model_peak_close_to_deployment_accounting(self, rng):
        """On a real network the planner peak stays within a factor of two of
        the analytic per-layer max(in+out) bound.  Padded scratch pushes the
        planner peak up; producer-writes-into-consumer slot sharing pushes it
        down (the eager trace double-counts a tensor as one layer's output and
        the next layer's input) — the two accountings agree to within 2x."""
        model = _quantized_model("mobilenetv2-tiny", rng, res=16)
        engine = compile_quantized(model)
        report = engine.memory_report((1, 3, 16, 16))
        analytic = peak_activation_memory(model, (3, 16, 16), bytes_per_element=1)
        assert analytic / 2 <= report.peak_value_int8_bytes <= 2 * analytic

    def test_forward_allocates_into_planned_arena(self, rng):
        model = _quantized_model("mobilenetv2-tiny", rng, res=16)
        engine = compile_quantized(model)
        plan = engine.plan((2, 3, 16, 16))
        out1 = plan.run(rng.normal(size=(2, 3, 16, 16)).astype(np.float32))
        assert plan.arena.size >= max(b.offset + b.size for b in plan.memory.buffers)
        # plans are cached per shape
        assert engine.plan((2, 3, 16, 16)) is plan
        out2 = engine.numpy_forward(rng.normal(size=(2, 3, 16, 16)).astype(np.float32))
        assert out1.shape == out2.shape

    def test_memory_plan_summary_mentions_peak(self, rng):
        model = _quantized_model("mobilenetv2-tiny", rng, res=16)
        summary = compile_quantized(model).memory_report((1, 3, 16, 16)).summary()
        assert "peak working set" in summary


class TestQuantizedNetApi:
    def test_ops_requires_a_plan(self, rng):
        model = _quantized_model("mobilenetv2-tiny", rng)
        engine = compile_quantized(model)
        with pytest.raises(RuntimeError):
            engine.ops
        engine.plan((1, 3, 16, 16))
        assert engine.ops

    def test_is_quantized_net(self, rng):
        model = _quantized_model("mobilenetv2-tiny", rng)
        assert isinstance(compile_quantized(model), QuantizedNet)
