"""Unit tests for adaptive optimisers, gradient clipping, EMA and schedulers."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter
from repro.optim import (
    SGD,
    Adam,
    AdamW,
    ExponentialLR,
    LambdaLR,
    ModelEMA,
    MultiStepLR,
    PolynomialLR,
    RMSprop,
    clip_grad_norm,
    clip_grad_value,
    global_grad_norm,
)


def _quadratic_param(value=5.0):
    return Parameter(np.array([value], dtype=np.float32))


def _minimise(optimizer, param, steps=200):
    for _ in range(steps):
        optimizer.zero_grad()
        loss = (nn.Tensor(param.data) * 0).sum()  # placeholder, gradient set manually
        param.grad = 2.0 * param.data  # d/dx of x^2
        optimizer.step()
    return float(param.data[0])


class TestAdamFamily:
    @pytest.mark.parametrize("cls", [Adam, AdamW, RMSprop])
    def test_minimises_quadratic(self, cls):
        param = _quadratic_param(5.0)
        optimizer = cls([param], lr=0.1)
        final = _minimise(optimizer, param)
        assert abs(final) < 0.5

    def test_adam_converges_faster_than_unit_sgd_on_ill_scaled_problem(self):
        # Gradient scale differs by 100x between coordinates; Adam normalises it.
        def run(optimizer_cls, lr):
            param = Parameter(np.array([1.0, 1.0], dtype=np.float32))
            optimizer = optimizer_cls([param], lr=lr)
            for _ in range(50):
                optimizer.zero_grad()
                param.grad = np.array([2.0 * param.data[0], 0.02 * param.data[1]], dtype=np.float32)
                optimizer.step()
            return np.abs(param.data).sum()

        assert run(Adam, 0.1) < run(lambda p, lr: SGD(p, lr=lr, momentum=0.0), 0.1)

    def test_adamw_decay_is_decoupled(self):
        # With zero gradient, AdamW still shrinks weights; Adam does not.
        param_adamw = _quadratic_param(1.0)
        param_adam = _quadratic_param(1.0)
        adamw = AdamW([param_adamw], lr=0.1, weight_decay=0.1)
        adam = Adam([param_adam], lr=0.1, weight_decay=0.0)
        for _ in range(5):
            param_adamw.grad = np.zeros(1, dtype=np.float32)
            param_adam.grad = np.zeros(1, dtype=np.float32)
            adamw.step()
            adam.step()
        assert param_adamw.data[0] < 1.0
        assert param_adam.data[0] == pytest.approx(1.0)

    def test_invalid_hyperparameters_rejected(self):
        param = _quadratic_param()
        with pytest.raises(ValueError):
            Adam([param], betas=(1.0, 0.999))
        with pytest.raises(ValueError):
            Adam([param], eps=0.0)
        with pytest.raises(ValueError):
            RMSprop([param], alpha=1.5)

    def test_skips_parameters_without_gradient(self):
        param = _quadratic_param(3.0)
        optimizer = Adam([param], lr=0.1)
        optimizer.step()  # no gradient accumulated yet
        assert param.data[0] == pytest.approx(3.0)

    def test_rmsprop_momentum_changes_trajectory(self):
        plain = _quadratic_param(5.0)
        with_momentum = _quadratic_param(5.0)
        opt_plain = RMSprop([plain], lr=0.05, momentum=0.0)
        opt_momentum = RMSprop([with_momentum], lr=0.05, momentum=0.9)
        for _ in range(10):
            plain.grad = 2.0 * plain.data
            with_momentum.grad = 2.0 * with_momentum.data
            opt_plain.step()
            opt_momentum.step()
        assert not np.allclose(plain.data, with_momentum.data)


class TestGradientClipping:
    def test_global_norm_matches_manual_computation(self):
        a = Parameter(np.zeros(3, dtype=np.float32))
        b = Parameter(np.zeros(2, dtype=np.float32))
        a.grad = np.array([3.0, 0.0, 0.0], dtype=np.float32)
        b.grad = np.array([0.0, 4.0], dtype=np.float32)
        assert global_grad_norm([a, b]) == pytest.approx(5.0)

    def test_clip_grad_norm_rescales(self):
        param = Parameter(np.zeros(2, dtype=np.float32))
        param.grad = np.array([3.0, 4.0], dtype=np.float32)
        before = clip_grad_norm([param], max_norm=1.0)
        assert before == pytest.approx(5.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_clip_grad_norm_no_op_when_below_threshold(self):
        param = Parameter(np.zeros(2, dtype=np.float32))
        param.grad = np.array([0.3, 0.4], dtype=np.float32)
        clip_grad_norm([param], max_norm=10.0)
        np.testing.assert_allclose(param.grad, [0.3, 0.4])

    def test_clip_grad_value_clamps_elementwise(self):
        param = Parameter(np.zeros(3, dtype=np.float32))
        param.grad = np.array([-5.0, 0.2, 7.0], dtype=np.float32)
        clip_grad_value([param], clip_value=1.0)
        np.testing.assert_allclose(param.grad, [-1.0, 0.2, 1.0])

    def test_invalid_thresholds_rejected(self):
        param = Parameter(np.zeros(1, dtype=np.float32))
        with pytest.raises(ValueError):
            clip_grad_norm([param], max_norm=0.0)
        with pytest.raises(ValueError):
            clip_grad_value([param], clip_value=-1.0)


class TestModelEMA:
    def _model(self):
        return nn.Sequential(nn.Linear(4, 3), nn.ReLU(), nn.Linear(3, 2))

    def test_shadow_tracks_towards_live_weights(self):
        model = self._model()
        ema = ModelEMA(model, decay=0.5)
        for param in model.parameters():
            param.data += 1.0
        ema.update(model)
        live = model.state_dict()
        for name, value in ema.shadow.items():
            assert not np.allclose(value, live[name])  # lagging behind
        for _ in range(30):
            ema.update(model)
        for name, value in ema.shadow.items():
            np.testing.assert_allclose(value, live[name], atol=1e-4)

    def test_copy_to_round_trip(self):
        model = self._model()
        ema = ModelEMA(model, decay=0.9)
        target = self._model()
        ema.copy_to(target)
        for (_, a), (_, b) in zip(model.named_parameters(), target.named_parameters()):
            np.testing.assert_allclose(a.data, b.data)

    def test_invalid_decay_rejected(self):
        with pytest.raises(ValueError):
            ModelEMA(self._model(), decay=1.0)

    def test_update_detects_key_mismatch(self):
        model = self._model()
        ema = ModelEMA(model)
        with pytest.raises(KeyError):
            ema.update(nn.Sequential(nn.Linear(2, 2)))


class TestNewSchedulers:
    def _optimizer(self, lr=1.0):
        return SGD([Parameter(np.zeros(1, dtype=np.float32))], lr=lr, momentum=0.0)

    def test_multistep_decays_at_milestones(self):
        scheduler = MultiStepLR(self._optimizer(), milestones=[2, 4], gamma=0.1)
        lrs = [scheduler.step() for _ in range(6)]
        assert lrs[0] == pytest.approx(1.0)
        assert lrs[2] == pytest.approx(0.1)
        assert lrs[4] == pytest.approx(0.01)

    def test_exponential_decay(self):
        scheduler = ExponentialLR(self._optimizer(), gamma=0.5)
        lrs = [scheduler.step() for _ in range(3)]
        assert lrs == pytest.approx([1.0, 0.5, 0.25])

    def test_polynomial_reaches_min_lr(self):
        scheduler = PolynomialLR(self._optimizer(), total_steps=4, power=2.0, min_lr=0.1)
        lrs = [scheduler.step() for _ in range(5)]
        assert lrs[0] == pytest.approx(1.0)
        assert lrs[-1] == pytest.approx(0.1)
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_lambda_scheduler_uses_callable(self):
        scheduler = LambdaLR(self._optimizer(lr=2.0), lr_lambda=lambda step: 1.0 / (step + 1))
        lrs = [scheduler.step() for _ in range(3)]
        assert lrs == pytest.approx([2.0, 1.0, 2.0 / 3.0])

    def test_scheduler_writes_lr_to_optimizer(self):
        optimizer = self._optimizer()
        scheduler = ExponentialLR(optimizer, gamma=0.1)
        scheduler.step()
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.1)
