"""Unit tests for the autograd Tensor: ops, broadcasting, backward graph."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, no_grad

from helpers import assert_gradients_close, make_tensor, numerical_gradient


class TestBasics:
    def test_construction_defaults_to_float32(self):
        t = Tensor([[1, 2], [3, 4]])
        assert t.dtype == np.float32
        assert t.shape == (2, 2)
        assert not t.requires_grad

    def test_construction_from_tensor_copies_payload(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert np.allclose(a.numpy(), b.numpy())

    def test_item_and_len(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_detach_shares_data_but_breaks_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = a.detach()
        assert not b.requires_grad
        assert b.numpy() is a.numpy()

    def test_backward_requires_scalar_without_grad_argument(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2).backward()


class TestArithmetic:
    @pytest.mark.parametrize(
        "op",
        [
            lambda a, b: a + b,
            lambda a, b: a - b,
            lambda a, b: a * b,
            lambda a, b: a / b,
        ],
    )
    def test_binary_op_gradients(self, op, rng):
        a = make_tensor((3, 4), rng)
        b = Tensor(rng.normal(size=(3, 4)) + 3.0, requires_grad=True, dtype=np.float64)
        out = op(a, b)
        loss = (out * out).sum()
        loss.backward()

        def f():
            return float((op(Tensor(a.data, dtype=np.float64), Tensor(b.data, dtype=np.float64)).data ** 2).sum())

        assert_gradients_close(a.grad, numerical_gradient(f, a.data))
        assert_gradients_close(b.grad, numerical_gradient(f, b.data))

    def test_broadcast_add_gradient_shapes(self, rng):
        a = make_tensor((2, 3, 4), rng)
        b = make_tensor((4,), rng)
        (a + b).sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, np.full(4, 6.0))

    def test_scalar_operands(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = (2.0 * a + 1.0) / 2.0 - 0.5
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])

    def test_rsub_and_rdiv(self):
        a = Tensor([2.0], requires_grad=True)
        (3.0 - a).backward()
        np.testing.assert_allclose(a.grad, [-1.0])
        b = Tensor([2.0], requires_grad=True)
        (4.0 / b).backward()
        np.testing.assert_allclose(b.grad, [-1.0])

    def test_pow_gradient(self, rng):
        a = Tensor(np.abs(rng.normal(size=(5,))) + 0.5, requires_grad=True, dtype=np.float64)
        (a ** 3).sum().backward()
        np.testing.assert_allclose(a.grad, 3 * a.data ** 2, rtol=1e-6)

    def test_matmul_gradient(self, rng):
        a = make_tensor((3, 4), rng)
        b = make_tensor((4, 2), rng)
        (a @ b).sum().backward()

        def f():
            return float((Tensor(a.data, dtype=np.float64) @ Tensor(b.data, dtype=np.float64)).data.sum())

        assert_gradients_close(a.grad, numerical_gradient(f, a.data))
        assert_gradients_close(b.grad, numerical_gradient(f, b.data))

    def test_gradient_accumulation_over_multiple_uses(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = a * 3.0 + a * 2.0
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 5.0])


class TestElementwiseFunctions:
    @pytest.mark.parametrize(
        "name",
        ["exp", "log", "sqrt", "abs", "sigmoid", "tanh", "relu"],
    )
    def test_unary_gradients(self, name, rng):
        base = np.abs(rng.normal(size=(4, 3))) + 0.6
        a = Tensor(base, requires_grad=True, dtype=np.float64)
        out = getattr(a, name)()
        (out * out).sum().backward()

        def f():
            return float((getattr(Tensor(a.data, dtype=np.float64), name)().data ** 2).sum())

        assert_gradients_close(a.grad, numerical_gradient(f, a.data))

    def test_leaky_relu_slope(self):
        a = Tensor([-2.0, 3.0], requires_grad=True)
        out = a.leaky_relu(0.25)
        np.testing.assert_allclose(out.numpy(), [-0.5, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [0.25, 1.0])

    def test_clip_gradient_masks_out_of_range(self):
        a = Tensor([-1.0, 0.5, 7.0], requires_grad=True)
        a.clip(0.0, 6.0).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_maximum_splits_gradient(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([2.0, 3.0], requires_grad=True)
        a.maximum(b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self, rng):
        a = make_tensor((2, 3, 4), rng)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1, 4)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3, 4)))

    def test_mean_gradient(self, rng):
        a = make_tensor((4, 5), rng)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full((4, 5), 1 / 20))

    def test_mean_over_axes(self, rng):
        a = make_tensor((2, 3, 4, 4), rng)
        out = a.mean(axis=(2, 3), keepdims=True)
        assert out.shape == (2, 3, 1, 1)
        np.testing.assert_allclose(out.numpy(), a.data.mean(axis=(2, 3), keepdims=True))

    def test_max_gradient_goes_to_argmax(self):
        a = Tensor([[1.0, 3.0], [5.0, 2.0]], requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_reshape_roundtrip_gradient(self, rng):
        a = make_tensor((2, 6), rng)
        a.reshape(3, 4).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 6)))

    def test_flatten(self, rng):
        a = make_tensor((2, 3, 4), rng)
        assert a.flatten().shape == (2, 12)

    def test_transpose_gradient(self, rng):
        a = make_tensor((2, 3, 4), rng)
        a.transpose(2, 0, 1).sum().backward()
        assert a.grad.shape == (2, 3, 4)

    def test_getitem_gradient_scatter(self):
        a = Tensor(np.arange(6, dtype=np.float64).reshape(2, 3), requires_grad=True)
        a[0].sum().backward()
        np.testing.assert_allclose(a.grad, [[1, 1, 1], [0, 0, 0]])

    def test_pad2d_inverse_of_crop(self, rng):
        a = make_tensor((1, 2, 3, 3), rng)
        padded = a.pad2d(2)
        assert padded.shape == (1, 2, 7, 7)
        padded.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((1, 2, 3, 3)))

    def test_concatenate_and_stack(self, rng):
        a = make_tensor((2, 3), rng)
        b = make_tensor((2, 3), rng)
        cat = Tensor.concatenate([a, b], axis=0)
        assert cat.shape == (4, 3)
        cat.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        stacked = Tensor.stack([a.detach(), b.detach()], axis=0)
        assert stacked.shape == (2, 2, 3)


class TestNoGrad:
    def test_no_grad_disables_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad
        assert out._prev == ()

    def test_no_grad_restores_state(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            pass
        out = a * 2
        assert out.requires_grad
