"""Unit tests for data-augmentation transforms."""

import numpy as np
import pytest

from repro.data.transforms import (
    ColorJitter,
    Compose,
    GaussianNoise,
    Normalize,
    RandAugmentLite,
    RandomCrop,
    RandomErasing,
    RandomHorizontalFlip,
)


@pytest.fixture
def image(rng):
    return rng.random((3, 16, 16)).astype(np.float32)


class TestIndividualTransforms:
    def test_flip_probability_extremes(self, image, rng):
        flipped = RandomHorizontalFlip(p=1.0)(image, rng)
        np.testing.assert_allclose(flipped, image[:, :, ::-1])
        unchanged = RandomHorizontalFlip(p=0.0)(image, rng)
        np.testing.assert_allclose(unchanged, image)

    def test_crop_preserves_shape(self, image, rng):
        out = RandomCrop(padding=3)(image, rng)
        assert out.shape == image.shape

    def test_crop_zero_padding_is_identity(self, image, rng):
        np.testing.assert_allclose(RandomCrop(padding=0)(image, rng), image)

    def test_erasing_zeroes_a_square(self, image, rng):
        out = RandomErasing(p=1.0, size_fraction=0.4)(image, rng)
        assert out.shape == image.shape
        assert not np.allclose(out, image)

    def test_erasing_skipped_when_p_zero(self, image, rng):
        np.testing.assert_allclose(RandomErasing(p=0.0)(image, rng), image)

    def test_color_jitter_stays_in_range(self, image, rng):
        out = ColorJitter(0.5, 0.5)(image, rng)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_gaussian_noise_changes_pixels_but_bounded(self, image, rng):
        out = GaussianNoise(0.1)(image, rng)
        assert not np.allclose(out, image)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_normalize(self, image, rng):
        out = Normalize(mean=0.5, std=0.5)(image, rng)
        np.testing.assert_allclose(out, (image - 0.5) / 0.5, rtol=1e-6)


class TestComposedPolicies:
    def test_compose_applies_in_order(self, image, rng):
        composed = Compose([Normalize(mean=0.0, std=1.0), Normalize(mean=1.0, std=1.0)])
        out = composed(image, rng)
        np.testing.assert_allclose(out, image - 1.0, rtol=1e-6)

    def test_randaugment_produces_valid_image(self, image, rng):
        policy = RandAugmentLite(num_ops=2, magnitude=0.8)
        out = policy(image, rng)
        assert out.shape == image.shape
        assert np.isfinite(out).all()

    def test_randaugment_is_stochastic(self, image):
        policy = RandAugmentLite(num_ops=2, magnitude=0.8)
        a = policy(image, np.random.default_rng(1))
        b = policy(image, np.random.default_rng(2))
        assert not np.allclose(a, b)
