"""Multi-fidelity serving: ladder specs, rung backends, fleet integration."""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro
from repro.models import create_model
from repro.serve.fidelity import (
    FidelityLadder,
    LadderBackend,
    RungSpec,
    default_ladder,
    ladder_backend,
    parse_fidelity,
)
from repro.utils import seed_everything

RESOLUTION = 12
CLASSES = 8


class TestParseFidelity:
    def test_engine_model_pairs(self):
        rungs = parse_fidelity("float:mobilenetv2-50,int8:mobilenetv2-tiny")
        assert [r.engine for r in rungs] == ["float", "int8"]
        assert [r.model for r in rungs] == ["mobilenetv2-50", "mobilenetv2-tiny"]

    def test_bare_engine_uses_default_model(self):
        rungs = parse_fidelity("float,int8", default_model="mcunet")
        assert all(r.model == "mcunet" for r in rungs)

    def test_artifact_rung(self):
        (rung,) = parse_fidelity("artifact:/some/dir/net.rpa")
        assert rung.artifact == "/some/dir/net.rpa"
        assert rung.name == "artifact:net.rpa"

    def test_artifact_rung_needs_path(self):
        with pytest.raises(ValueError, match="needs a path"):
            parse_fidelity("artifact:")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="no rungs"):
            parse_fidelity(" , ")

    def test_default_ladder(self):
        rungs = default_ladder("mcunet")
        assert [r.engine for r in rungs] == ["float", "int8"]
        assert all(r.model == "mcunet" for r in rungs)


class TestLadderBackend:
    @pytest.fixture(scope="class")
    def backend(self):
        return ladder_backend(
            "float:mobilenetv2-tiny,int8:mobilenetv2-tiny",
            resolution=RESOLUTION,
            num_classes=CLASSES,
            probe_batch=32,
        )

    def test_build_merges_io_contract(self, backend):
        assert isinstance(backend, LadderBackend)
        assert backend.input_shape == (3, RESOLUTION, RESOLUTION)
        io = backend.io_plan()
        assert io.output_shape == (CLASSES,)
        # the merged slot must fit every rung's own plan
        from repro.runtime import plan_io

        for net in backend.nets:
            assert io.slot_elements >= plan_io(net, backend.input_shape).slot_elements

    def test_dispatch_follows_active_rung(self, backend):
        rng = np.random.default_rng(0)
        x = rng.normal(0.2, 0.8, size=(2, 3, RESOLUTION, RESOLUTION)).astype(np.float32)
        backend.set_rung(0)
        top = backend.forward(x)
        backend.set_rung(1)
        low = backend.forward(x)
        backend.set_rung(0)
        assert not np.array_equal(top, low)  # int8 rung computes different numbers
        np.testing.assert_array_equal(top, backend.forward(x))

    def test_set_rung_clamps(self, backend):
        assert backend.set_rung(99) == 1
        assert backend.set_rung(-5) == 0
        assert backend.active_rung == 0

    def test_agreement_probe(self, backend):
        assert backend.agreement[0] == 1.0
        assert 0.0 <= backend.agreement[1] <= 1.0
        assert backend.rung_names == ["float:mobilenetv2-tiny", "int8:mobilenetv2-tiny"]

    def test_single_rung_ladder(self):
        backend = ladder_backend("float", resolution=RESOLUTION, num_classes=CLASSES,
                                 probe_batch=0)
        assert len(backend.rungs) == 1
        assert backend.agreement == [1.0]

    def test_mismatched_output_contract_rejected(self, tmp_path):
        seed_everything(0)
        other = create_model("mobilenetv2-tiny", num_classes=CLASSES + 1)
        other.eval()
        path = tmp_path / "other.rpa"
        repro.compile(other).save(str(path), input_shape=(3, RESOLUTION, RESOLUTION))
        ladder = FidelityLadder(
            [
                RungSpec(name="float", engine="float", model="mobilenetv2-tiny"),
                RungSpec(name="odd", artifact=str(path)),
            ],
            resolution=RESOLUTION,
            num_classes=CLASSES,
        )
        with pytest.raises(ValueError, match="output contract"):
            ladder.build()

    def test_mismatched_input_contract_rejected(self, tmp_path):
        seed_everything(0)
        other = create_model("mobilenetv2-tiny", num_classes=CLASSES)
        other.eval()
        path = tmp_path / "small.rpa"
        repro.compile(other).save(str(path), input_shape=(3, 8, 8))
        ladder = FidelityLadder(
            [
                RungSpec(name="float", engine="float", model="mobilenetv2-tiny"),
                RungSpec(name="small", artifact=str(path)),
            ],
            resolution=RESOLUTION,
            num_classes=CLASSES,
        )
        with pytest.raises(ValueError, match="input contract"):
            ladder.build()

    def test_train_artifact_rejected(self, tmp_path):
        seed_everything(0)
        model = create_model("mobilenetv2-tiny", num_classes=CLASSES)
        step = repro.compile(model, mode="train")
        path = tmp_path / "train.rpa"
        step.save(str(path), input_shape=(3, RESOLUTION, RESOLUTION))
        ladder = FidelityLadder([RungSpec(name="t", artifact=str(path))],
                                resolution=RESOLUTION, num_classes=CLASSES)
        with pytest.raises(ValueError, match="not servable"):
            ladder.build()

    def test_artifact_rung_matches_compiled_rung(self, tmp_path):
        """An artifact rung computes the same bits as its compiled twin."""
        from repro.serve.fleet import resolve_net

        net, shape = resolve_net(
            model_name="mobilenetv2-tiny", resolution=RESOLUTION,
            num_classes=CLASSES, engine="int8", seed=0,
        )
        path = tmp_path / "int8.rpa"
        net.save(str(path), input_shape=shape)
        compiled = ladder_backend("float:mobilenetv2-tiny,int8:mobilenetv2-tiny",
                                  resolution=RESOLUTION, num_classes=CLASSES, probe_batch=0)
        mixed = ladder_backend(f"float:mobilenetv2-tiny,artifact:{path}",
                               resolution=RESOLUTION, num_classes=CLASSES, probe_batch=0)
        rng = np.random.default_rng(1)
        x = rng.normal(0.2, 0.8, size=(2,) + shape).astype(np.float32)
        compiled.set_rung(1)
        mixed.set_rung(1)
        np.testing.assert_array_equal(compiled.forward(x), mixed.forward(x))


class TestLadderFleet:
    def test_rung_switch_over_live_fleet(self):
        from repro.serve.fleet import Fleet, FleetConfig

        config = FleetConfig(
            replicas=1,
            max_pending=16,
            builder="repro.serve.fidelity:ladder_backend",
            builder_kwargs={
                "rungs": "float:mobilenetv2-tiny,int8:mobilenetv2-tiny",
                "resolution": RESOLUTION,
                "num_classes": CLASSES,
                "probe_batch": 16,
            },
        )
        rng = np.random.default_rng(0)
        x = rng.normal(0.2, 0.8, size=(3, RESOLUTION, RESOLUTION)).astype(np.float32)
        with Fleet(config) as fleet:
            assert fleet.fidelity_rungs == 2
            with fleet.client() as client:
                full = client.predict(x, timeout=30.0)
                fleet.set_fidelity(1, reason="test")
                time.sleep(0.2)
                fast = client.predict(x, timeout=30.0)
                fleet.set_fidelity(0)
                time.sleep(0.2)
                again = client.predict(x, timeout=30.0)
            assert not np.array_equal(full, fast)
            np.testing.assert_array_equal(full, again)
            stats = fleet.stats()
            payload = stats.to_dict()["fidelity"]
            assert payload["active_rung"] == 0
            assert payload["switches"] == 2
            assert [r["name"] for r in payload["rungs"]] == [
                "float:mobilenetv2-tiny",
                "int8:mobilenetv2-tiny",
            ]
            assert sum(r["completed"] for r in payload["rungs"]) == 3
            assert stats.cold_start_ms_mean is not None
            assert stats.cold_start_ms_mean > 0
            assert "fidelity" in stats.summary()
            events = [e for e in stats.scale_events if e.get("kind") == "fidelity"]
            assert [e["to"] for e in events] == [1, 0]
        assert stats.lost == 0
