"""Unit tests for magnitude and channel pruning."""

import numpy as np
import pytest

from repro import nn
from repro.compress import MagnitudePruner, prune_channels_by_slimming, sparsity
from repro.models import mobilenet_v2
from repro.models.blocks import ConvBNAct


def _small_model():
    return nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1),
        nn.ReLU(),
        nn.Conv2d(8, 8, 3, padding=1),
        nn.Flatten(),
        nn.Linear(8 * 8 * 8, 4),
    )


class TestMagnitudePruner:
    def test_reaches_target_sparsity_globally(self):
        model = _small_model()
        pruner = MagnitudePruner(model, scope="global")
        report = pruner.prune(0.5)
        assert report.achieved_sparsity == pytest.approx(0.5, abs=0.02)
        assert sparsity(model) == pytest.approx(report.achieved_sparsity)

    def test_layerwise_scope_prunes_each_layer_equally(self):
        model = _small_model()
        report = MagnitudePruner(model, scope="layer").prune(0.3)
        for layer_sparsity in report.per_layer.values():
            assert layer_sparsity == pytest.approx(0.3, abs=0.05)

    def test_zero_sparsity_is_a_no_op(self):
        model = _small_model()
        before = [p.data.copy() for p in model.parameters()]
        MagnitudePruner(model).prune(0.0)
        for old, new in zip(before, [p.data for p in model.parameters()]):
            np.testing.assert_allclose(old, new)

    def test_masks_persist_through_weight_updates(self):
        model = _small_model()
        pruner = MagnitudePruner(model)
        pruner.prune(0.6)
        # Simulate an optimiser step that revives pruned weights...
        for param in model.parameters():
            param.data += 0.1
        # ...then re-apply the masks.
        pruner.apply_masks()
        assert sparsity(model) >= 0.55

    def test_mask_gradients_blocks_pruned_updates(self):
        model = _small_model()
        pruner = MagnitudePruner(model)
        pruner.prune(0.5)
        x = nn.Tensor(np.random.default_rng(0).normal(size=(2, 3, 8, 8)).astype(np.float32))
        model(x).sum().backward()
        pruner.mask_gradients()
        conv = model[0]
        mask = pruner.masks["0.weight"]
        assert np.all(conv.weight.grad[mask == 0.0] == 0.0)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            MagnitudePruner(_small_model(), scope="random")
        with pytest.raises(ValueError):
            MagnitudePruner(_small_model()).prune(1.0)
        with pytest.raises(ValueError):
            MagnitudePruner(nn.Sequential(nn.ReLU())).prune(0.5)

    def test_report_summary_mentions_every_layer(self):
        model = _small_model()
        report = MagnitudePruner(model).prune(0.25)
        text = report.summary()
        assert "target sparsity" in text
        assert all(name in text for name in report.per_layer)


class TestChannelPruning:
    def test_weakest_channels_are_zeroed(self):
        block = ConvBNAct(3, 8, kernel_size=3)
        # Make channel importance unambiguous.
        block.bn.weight.data[...] = np.arange(1, 9, dtype=np.float32)
        report = prune_channels_by_slimming(block, prune_ratio=0.5)
        assert report.per_layer
        # The four smallest-scale channels must be fully zero.
        assert np.all(block.conv.weight.data[:4] == 0.0)
        assert np.all(block.bn.weight.data[:4] == 0.0)
        assert np.any(block.conv.weight.data[4:] != 0.0)

    def test_never_removes_all_channels(self):
        block = ConvBNAct(3, 4, kernel_size=1)
        block.bn.weight.data[...] = 1.0  # all equally (un)important
        prune_channels_by_slimming(block, prune_ratio=0.9)
        remaining = np.count_nonzero(block.bn.weight.data)
        assert remaining >= 1

    def test_works_on_full_mobilenet(self):
        model = mobilenet_v2("tiny", num_classes=4)
        report = prune_channels_by_slimming(model, prune_ratio=0.25)
        assert report.pruned_weights > 0
        assert 0.0 < report.achieved_sparsity < 1.0

    def test_structure_is_preserved(self):
        model = mobilenet_v2("tiny", num_classes=4)
        shapes_before = [p.data.shape for p in model.parameters()]
        prune_channels_by_slimming(model, prune_ratio=0.3)
        shapes_after = [p.data.shape for p in model.parameters()]
        assert shapes_before == shapes_after

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            prune_channels_by_slimming(ConvBNAct(3, 4, kernel_size=1), prune_ratio=1.0)

    def test_model_without_conv_bn_pairs_rejected(self):
        with pytest.raises(ValueError):
            prune_channels_by_slimming(nn.Sequential(nn.Linear(4, 2)), prune_ratio=0.5)
