"""Unit tests for the model zoo: blocks, MobileNetV2 family, MCUNet, registry."""

import numpy as np
import pytest

from repro import nn
from repro.eval import count_complexity
from repro.models import (
    BasicBlock,
    Bottleneck,
    ConvBNAct,
    InvertedResidual,
    MCUNet,
    MobileNetV2,
    available_models,
    create_model,
    make_divisible,
    mobilenet_v2,
)


def _input(batch=2, size=24):
    return nn.Tensor(np.random.rand(batch, 3, size, size).astype(np.float32))


class TestMakeDivisible:
    def test_rounds_to_divisor(self):
        assert make_divisible(10, 4) == 12
        assert make_divisible(8, 4) == 8

    def test_never_drops_below_90_percent(self):
        value = make_divisible(15, 8)
        assert value >= 0.9 * 15

    def test_minimum_value(self):
        assert make_divisible(1, 4) == 4


class TestBlocks:
    def test_conv_bn_act_shapes(self):
        block = ConvBNAct(3, 8, kernel_size=3, stride=2)
        out = block(_input())
        assert out.shape == (2, 8, 12, 12)

    def test_conv_bn_act_unknown_activation(self):
        with pytest.raises(ValueError):
            ConvBNAct(3, 8, activation="gelu")

    def test_inverted_residual_with_and_without_skip(self):
        with_skip = InvertedResidual(8, 8, stride=1, expand_ratio=4)
        without_skip = InvertedResidual(8, 16, stride=2, expand_ratio=4)
        assert with_skip.use_residual
        assert not without_skip.use_residual
        x = nn.Tensor(np.random.rand(2, 8, 8, 8).astype(np.float32))
        assert with_skip(x).shape == (2, 8, 8, 8)
        assert without_skip(x).shape == (2, 16, 4, 4)

    def test_inverted_residual_expand_ratio_one_has_no_expand_conv(self):
        block = InvertedResidual(8, 8, expand_ratio=1)
        assert isinstance(block.expand, nn.Identity)

    def test_inverted_residual_invalid_stride(self):
        with pytest.raises(ValueError):
            InvertedResidual(8, 8, stride=3)

    def test_basic_and_bottleneck_blocks(self):
        x = nn.Tensor(np.random.rand(2, 8, 8, 8).astype(np.float32))
        assert BasicBlock(8, 8)(x).shape == (2, 8, 8, 8)
        assert Bottleneck(8, 8)(x).shape == (2, 8, 8, 8)
        assert BasicBlock(8, 16, stride=2)(x).shape == (2, 16, 4, 4)
        assert Bottleneck(8, 16, stride=2)(x).shape == (2, 16, 4, 4)


class TestMobileNetV2:
    def test_forward_shape(self):
        model = mobilenet_v2("tiny", num_classes=10)
        assert model(_input()).shape == (2, 10)

    def test_all_variants_build_and_order_by_capacity(self):
        sizes = {}
        for variant in ("tiny", "35", "50", "100"):
            model = mobilenet_v2(variant, num_classes=8)
            sizes[variant] = count_complexity(model, (3, 24, 24)).params
        assert sizes["tiny"] < sizes["35"] < sizes["50"] < sizes["100"]

    def test_unknown_variant_raises(self):
        with pytest.raises(ValueError):
            mobilenet_v2("9000")

    def test_reset_classifier(self):
        model = mobilenet_v2("tiny", num_classes=10)
        model.reset_classifier(3)
        assert model(_input()).shape == (2, 3)

    def test_forward_features_spatial_map(self):
        model = mobilenet_v2("tiny", num_classes=10)
        features = model.forward_features(_input())
        assert features.ndim == 4
        assert features.shape[1] == model.feature_channels

    def test_inverted_residual_blocks_listed_in_order(self):
        model = mobilenet_v2("35", num_classes=4)
        blocks = model.inverted_residual_blocks()
        assert len(blocks) == 7
        names = [name for name, _ in blocks]
        assert names == sorted(names, key=lambda n: int(n.split(".")[1]))

    def test_dropout_variant(self):
        model = MobileNetV2(num_classes=4, width_mult=0.5, dropout=0.5)
        model.train()
        assert model(_input()).shape == (2, 4)


class TestMCUNet:
    def test_forward_and_mixed_kernels(self):
        model = MCUNet(num_classes=6)
        assert model(_input()).shape == (2, 6)
        kernel_sizes = {
            module.depthwise.conv.kernel_size
            for _, module in model.named_modules()
            if isinstance(module, InvertedResidual)
        }
        assert {3, 5, 7} <= kernel_sizes

    def test_reset_classifier(self):
        model = MCUNet(num_classes=6)
        model.reset_classifier(2)
        assert model(_input()).shape == (2, 2)


class TestRegistry:
    def test_available_models(self):
        assert "mobilenetv2-tiny" in available_models()
        assert "mcunet" in available_models()

    def test_create_model_case_insensitive(self):
        model = create_model("MobileNetV2-Tiny", num_classes=5)
        assert model(_input()).shape == (2, 5)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            create_model("resnet152")
