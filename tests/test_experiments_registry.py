"""Unit tests for the programmatic experiment registry and its CLI."""

import pytest

from repro.experiments import ExperimentScale, available_experiments, run_experiment
from repro.experiments.__main__ import build_parser, main


@pytest.fixture(scope="module")
def tiny_scale():
    return ExperimentScale.tiny()


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        names = available_experiments()
        assert {"table1", "table2", "table3", "table4", "table5", "table6", "fig1a", "cost"} <= set(names)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("table99")

    def test_cost_experiment_is_analytic_and_ordered(self, tiny_scale):
        rows = run_experiment("cost", tiny_scale)
        assert len(rows) == 4
        assert all(row.unit == "MFLOPs" for row in rows)
        measured = {row.setting: row.measured_value for row in rows}
        assert measured["mobilenetv2-tiny"] < measured["mobilenetv2-100"]

    def test_table1_returns_all_methods(self, tiny_scale):
        rows = run_experiment("table1", tiny_scale)
        settings = [row.setting for row in rows]
        assert settings == ["Vanilla", "NetAug", "NetBooster"]
        assert all(0.0 <= row.measured_value <= 100.0 for row in rows)
        assert all(row.paper_value is not None for row in rows)

    def test_table6_sweeps_all_ratios(self, tiny_scale):
        rows = run_experiment("table6", tiny_scale)
        assert [row.setting for row in rows] == ["ratio=2", "ratio=4", "ratio=6", "ratio=8"]

    def test_fidelity_sweeps_both_rungs(self, tiny_scale):
        rows = run_experiment("fidelity", tiny_scale)
        assert [row.setting for row in rows] == [
            "float / top-1",
            "float / latency",
            "int8 / top-1",
            "int8 / latency",
        ]
        units = {row.setting: row.unit for row in rows}
        assert units["float / top-1"] == "top-1 %"
        assert units["int8 / latency"] == "ms p99"
        assert all(row.paper_value is None for row in rows)
        assert all(row.measured_value > 0 for row in rows)

    def test_row_string_contains_paper_and_measured(self, tiny_scale):
        row = run_experiment("cost", tiny_scale)[0]
        text = str(row)
        assert "paper=" in text and "measured=" in text

    def test_scale_helpers_build_consistent_configs(self, tiny_scale):
        corpus = tiny_scale.corpus()
        assert corpus.train.num_classes == tiny_scale.num_classes
        assert tiny_scale.pretrain_config().epochs == tiny_scale.pretrain_epochs
        assert tiny_scale.pretrain_config(3).epochs == tiny_scale.pretrain_epochs + 3
        assert tiny_scale.finetune_config().lr == pytest.approx(tiny_scale.finetune_lr)


class TestCli:
    def test_list_option(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "cost" in out

    def test_list_subcommand(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "cost" in out

    def test_no_arguments_prints_usage(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "run-all" in out and "Available experiments" in out and "table1" in out

    def test_no_experiment_names_prints_usage(self, capsys):
        assert main(["--tiny"]) == 0
        out = capsys.readouterr().out
        assert "Available experiments" in out

    def test_unknown_experiment_prints_available_instead_of_raising(self, capsys):
        assert main(["table99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err and "table1" in err

    def test_unknown_flag_exits_with_usage(self, capsys):
        assert main(["--bogus-flag"]) == 2
        assert "usage" in capsys.readouterr().err.lower()

    def test_runs_named_experiment(self, capsys):
        assert main(["cost", "--tiny"]) == 0
        out = capsys.readouterr().out
        assert "cost" in out and "measured=" in out

    def test_parser_accepts_overrides(self):
        args = build_parser().parse_args(["table1", "--tiny", "--classes", "3", "--epochs", "1"])
        assert args.experiments == ["table1"]
        assert args.tiny and args.classes == 3 and args.epochs == 1
