"""Property-based tests (hypothesis) for the newer substrate components.

Complements ``test_properties.py`` (which covers the autograd/contraction
invariants) with invariants of the compression toolkit, the corruption
battery, the mixing augmentations and the feature-similarity metric.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.compress import MagnitudePruner, QuantizationSpec, quantize_array, dequantize_array
from repro.compress.quantization import fake_quantize
from repro.core import linear_cka
from repro.core.alpha_schedules import PLT_SCHEDULES
from repro.data import cutmix, mixup
from repro.data.corruptions import corrupt
from repro.nn import functional as F

SETTINGS = dict(max_examples=25, deadline=None)


# --------------------------------------------------------------------------- #
# quantization
# --------------------------------------------------------------------------- #
class TestQuantizationProperties:
    @given(
        data=st.lists(st.floats(-10.0, 10.0, allow_nan=False), min_size=4, max_size=64),
        bits=st.integers(2, 8),
        symmetric=st.booleans(),
    )
    @settings(**SETTINGS)
    def test_round_trip_error_bounded_by_one_step(self, data, bits, symmetric):
        array = np.asarray(data, dtype=np.float32)
        spec = QuantizationSpec(bits=bits, symmetric=symmetric, per_channel=False)
        q, scale, zero_point = quantize_array(array, spec)
        restored = dequantize_array(q, scale, zero_point)
        # Affine quantization clamps at the grid ends, so allow one full step.
        assert np.max(np.abs(array - restored)) <= float(scale[0]) * 1.001 + 1e-6

    @given(
        data=st.lists(st.floats(-5.0, 5.0, allow_nan=False), min_size=4, max_size=32),
        bits=st.integers(2, 8),
    )
    @settings(**SETTINGS)
    def test_grid_has_at_most_2_to_the_bits_values(self, data, bits):
        array = np.asarray(data, dtype=np.float32)
        spec = QuantizationSpec(bits=bits, symmetric=True, per_channel=False)
        q, _, _ = quantize_array(array, spec)
        assert len(np.unique(q)) <= 2 ** bits

    @given(data=st.lists(st.floats(-5.0, 5.0, allow_nan=False), min_size=4, max_size=32))
    @settings(**SETTINGS)
    def test_fake_quantize_is_idempotent(self, data):
        array = np.asarray(data, dtype=np.float32)
        spec = QuantizationSpec(bits=6, per_channel=False)
        once = fake_quantize(array, spec)
        np.testing.assert_allclose(fake_quantize(once, spec), once, atol=1e-5)


# --------------------------------------------------------------------------- #
# pruning
# --------------------------------------------------------------------------- #
class TestPruningProperties:
    @given(sparsity=st.floats(0.0, 0.95), scope=st.sampled_from(["global", "layer"]))
    @settings(max_examples=10, deadline=None)
    def test_achieved_sparsity_close_to_target(self, sparsity, scope):
        model = nn.Sequential(nn.Conv2d(3, 6, 3), nn.ReLU(), nn.Flatten(), nn.Linear(6, 4))
        report = MagnitudePruner(model, scope=scope).prune(sparsity)
        assert abs(report.achieved_sparsity - sparsity) <= 0.1
        # Pruning never grows the weights.
        assert report.pruned_weights <= report.total_weights


# --------------------------------------------------------------------------- #
# corruptions and mixing
# --------------------------------------------------------------------------- #
class TestDataProperties:
    @given(
        name=st.sampled_from(["gaussian_noise", "brightness", "contrast", "pixelate"]),
        severity=st.integers(1, 5),
    )
    @settings(max_examples=20, deadline=None)
    def test_corruption_shape_invariant(self, name, severity):
        rng = np.random.default_rng(0)
        images = rng.uniform(0, 1, size=(2, 3, 12, 12)).astype(np.float32)
        out = corrupt(images, name, severity=severity)
        assert out.shape == images.shape
        assert np.isfinite(out).all()

    @given(alpha=st.floats(0.0, 2.0), seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_mixup_targets_are_valid_distributions(self, alpha, seed):
        rng = np.random.default_rng(seed)
        images = rng.uniform(0, 1, size=(6, 3, 8, 8)).astype(np.float32)
        labels = np.arange(6) % 3
        _, targets = mixup(images, labels, num_classes=3, alpha=alpha, rng=rng)
        assert (targets >= 0).all()
        np.testing.assert_allclose(targets.sum(axis=1), 1.0, atol=1e-5)

    @given(alpha=st.floats(0.1, 2.0), seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_cutmix_pixels_come_from_the_batch(self, alpha, seed):
        rng = np.random.default_rng(seed)
        images = rng.uniform(0, 1, size=(4, 1, 8, 8)).astype(np.float32)
        labels = np.arange(4) % 2
        mixed, targets = cutmix(images, labels, num_classes=2, alpha=alpha, rng=rng)
        # Every pixel of the mixed batch appears somewhere in the original batch.
        assert np.isin(np.round(mixed, 5), np.round(images, 5)).all()
        np.testing.assert_allclose(targets.sum(axis=1), 1.0, atol=1e-5)


# --------------------------------------------------------------------------- #
# feature similarity and PLT schedules
# --------------------------------------------------------------------------- #
class TestAnalysisProperties:
    @given(
        n=st.integers(5, 30),
        d=st.integers(2, 8),
        scale=st.floats(0.1, 10.0),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_cka_bounded_and_scale_invariant(self, n, d, scale, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(n, d))
        b = rng.normal(size=(n, d))
        value = linear_cka(a, b)
        assert 0.0 <= value <= 1.0 + 1e-9
        assert linear_cka(a, scale * b) == pytest.approx(value, abs=1e-9)

    @given(
        name=st.sampled_from(sorted(PLT_SCHEDULES)),
        total_steps=st.integers(1, 40),
        initial_alpha=st.floats(0.0, 0.9),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_schedule_is_monotone_and_terminates_at_identity(
        self, name, total_steps, initial_alpha
    ):
        activation = nn.DecayableReLU()
        holder = nn.Sequential(activation)
        schedule = PLT_SCHEDULES[name](holder, total_steps, initial_alpha)
        # collect_decayable_activations(expanded_only=True) finds nothing in a
        # bare Sequential, so drive the activation directly.
        schedule.activations = [activation]
        schedule.set_alpha(initial_alpha)
        previous = schedule.alpha
        for _ in range(total_steps):
            current = schedule.step()
            assert current >= previous - 1e-9
            previous = current
        assert schedule.finished
        assert activation.is_linear


# --------------------------------------------------------------------------- #
# soft-target cross entropy consistency (ties mixing to the loss module)
# --------------------------------------------------------------------------- #
class TestLossProperties:
    @given(
        seed=st.integers(0, 500),
        n=st.integers(2, 8),
        classes=st.integers(2, 6),
        smoothing=st.floats(0.0, 0.5),
    )
    @settings(max_examples=25, deadline=None)
    def test_label_smoothing_equals_soft_target_formulation(self, seed, n, classes, smoothing):
        rng = np.random.default_rng(seed)
        logits = nn.Tensor(rng.normal(size=(n, classes)).astype(np.float32))
        labels = rng.integers(0, classes, size=n)
        smoothed_hard = F.cross_entropy(logits, labels, label_smoothing=smoothing).item()
        soft = (1.0 - smoothing) * F.one_hot(labels, classes) + smoothing / classes
        soft_loss = F.cross_entropy(logits, soft, soft_targets=True).item()
        assert smoothed_hard == pytest.approx(soft_loss, rel=1e-4, abs=1e-5)
