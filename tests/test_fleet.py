"""Fault-matrix tests for the multi-process serving fleet.

Every scenario asserts the fleet's core invariant — zero lost requests: each
admitted request resolves to a result or a typed error, across replica
SIGKILLs, hangs, corrupt replies, overload shedding and drain-on-shutdown —
and that crashed replicas come back within the restart backoff budget.
"""

from __future__ import annotations

import socket
import time

import numpy as np
import pytest

from repro.serve import (
    BadRequest,
    DeadlineExceeded,
    Fleet,
    FleetConfig,
    Overloaded,
    echo_backend,
    parse_chaos,
)
from repro.serve.chaos import ChaosConfig, ChaosMonkey, Fault
from repro.serve.transport import (
    KIND_ERROR,
    KIND_REQUEST,
    KIND_RESPONSE,
    error_for,
    pack_frame,
    read_frame,
    split_frame,
)

RES = 4
CLASSES = 4
SHAPE = (3, RES, RES)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def fleet_config(**overrides) -> FleetConfig:
    """Fast-heartbeat echo fleet sized for tests."""
    defaults = dict(
        replicas=2,
        builder="repro.serve.fleet:echo_backend",
        builder_kwargs={"resolution": RES, "classes": CLASSES},
        heartbeat_interval=0.04,
        miss_threshold=4,
        max_wait_ms=0.5,
        start_timeout=30.0,
        restart_backoff_base=0.02,
        restart_backoff_cap=0.5,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


def oracle(xs: np.ndarray) -> np.ndarray:
    return echo_backend(resolution=RES, classes=CLASSES).forward(xs)


def samples(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n,) + SHAPE).astype(np.float32)


def assert_zero_lost(fleet: Fleet) -> None:
    stats = fleet.stats()
    assert stats.lost == 0, f"lost requests: {stats.to_dict()}"


def wait_until(predicate, timeout: float, message: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(message)


# --------------------------------------------------------------------------- #
# transport units
# --------------------------------------------------------------------------- #
class TestTransport:
    def test_frame_roundtrip(self):
        frame = pack_frame(KIND_REQUEST, 42, {"deadline_ms": 5.0}, b"\x01\x02\x03")
        kind, request_id, meta, payload = split_frame(frame[4:])
        assert (kind, request_id, meta, payload) == (
            KIND_REQUEST,
            42,
            {"deadline_ms": 5.0},
            b"\x01\x02\x03",
        )

    def test_empty_meta_and_payload(self):
        kind, request_id, meta, payload = split_frame(pack_frame(KIND_RESPONSE, 7)[4:])
        assert (kind, request_id, meta, payload) == (KIND_RESPONSE, 7, {}, b"")

    def test_error_for_maps_codes(self):
        assert isinstance(error_for("overloaded"), Overloaded)
        assert isinstance(error_for("deadline"), DeadlineExceeded)
        assert isinstance(error_for("bad_request"), BadRequest)
        assert error_for("overloaded").retryable
        assert not error_for("deadline").retryable
        assert error_for("no-such-code", "boom").args == ("boom",)


# --------------------------------------------------------------------------- #
# chaos units
# --------------------------------------------------------------------------- #
class TestChaos:
    def test_parse_spec(self):
        config = parse_chaos("kill:prob=1,warmup=3,max=1;slow:prob=0.1,ms=20")
        assert [f.kind for f in config.faults] == ["kill", "slow"]
        kill, slow = config.faults
        assert (kill.prob, kill.warmup, kill.max_events) == (1.0, 3, 1)
        assert (slow.prob, slow.ms) == (0.1, 20.0)
        assert "kill" in config.describe()

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            parse_chaos("explode:prob=1")
        with pytest.raises(ValueError):
            parse_chaos("kill:frequency=1")

    def test_empty_spec_disables(self):
        assert parse_chaos("").faults == ()
        assert parse_chaos(None).faults == ()

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "corrupt:prob=0.5,max=2")
        config = ChaosConfig.from_env()
        assert config.faults[0].kind == "corrupt"
        monkeypatch.delenv("REPRO_CHAOS")
        assert ChaosConfig.from_env().faults == ()

    def test_warmup_and_cap(self):
        config = ChaosConfig(faults=(Fault(kind="slow", prob=1.0, warmup=3, max_events=2, ms=1),))
        monkey = ChaosMonkey(config, scope=0)
        fires = [monkey.draw("slow") is not None for _ in range(10)]
        assert fires == [False] * 3 + [True, True] + [False] * 5

    def test_corrupt_reply_flips_bytes(self):
        config = ChaosConfig(faults=(Fault(kind="corrupt", prob=1.0),))
        monkey = ChaosMonkey(config, scope=1)
        buf = np.ones(4, dtype=np.float32)
        before = buf.tobytes()
        assert monkey.corrupt_reply(buf)
        assert buf.tobytes() != before

    def test_negative_scope_is_valid(self):
        ChaosMonkey(ChaosConfig(faults=(Fault(kind="drop", prob=1.0),)), scope=-2).draw("drop")


# --------------------------------------------------------------------------- #
# fleet behavior
# --------------------------------------------------------------------------- #
class TestFleetServing:
    def test_roundtrip_matches_backend(self):
        xs = samples(24)
        with Fleet(fleet_config()) as fleet:
            with fleet.client() as client:
                assert client.input_shape == SHAPE
                assert client.output_shape == (CLASSES,)
                futures = [client.submit(x) for x in xs]
                outs = np.stack([f.result(timeout=30) for f in futures])
            assert np.allclose(outs, oracle(xs))
            stats = fleet.stats()
            assert stats.completed == 24
            assert_zero_lost(fleet)
        assert fleet.stats().lost == 0  # final post-drain snapshot

    def test_io_plan_sizes_slots(self):
        with Fleet(fleet_config()) as fleet:
            io = fleet.io
            assert io.input_elements == int(np.prod(SHAPE))
            assert io.output_elements == CLASSES
            assert io.slot_elements == io.input_elements + io.output_elements
            assert io.slot_bytes == io.slot_elements * 4

    def test_replica_sigkill_mid_batch_zero_lost_and_restart(self):
        config = fleet_config(chaos="kill:prob=1,warmup=1,max=1", max_attempts=6)
        xs = samples(40)
        with Fleet(config) as fleet:
            fleet.wait_ready(replicas=2, timeout=30)
            with fleet.client(timeout=30.0, retries=4) as client:
                futures = [client.submit(x) for x in xs]
                resolved = 0
                for future, x in zip(futures, xs):
                    try:
                        out = future.result(timeout=30)
                        assert np.allclose(out, oracle(x[None])[0])
                    except Exception:
                        pass  # a typed error is an answer, not a loss
                    resolved += 1
                assert resolved == len(xs)
                assert_zero_lost(fleet)
                stats = fleet.stats()
                assert stats.crashes_detected >= 1
                # restart within the backoff budget: the watchdog must bring
                # the fleet back to full strength while we watch
                wait_until(
                    lambda: fleet.stats().ready == config.replicas,
                    timeout=10.0,
                    message="killed replica was not restarted within budget",
                )
                assert fleet.stats().restarts >= 1
                # the recovered fleet still serves correct answers
                out = client.predict(xs[0], timeout=30)
                assert np.allclose(out, oracle(xs[0][None])[0])
            assert_zero_lost(fleet)

    def test_replica_hang_detected_and_restarted(self):
        config = fleet_config(chaos="hang:prob=1,warmup=1,max=1", max_attempts=6)
        xs = samples(40)
        with Fleet(config) as fleet:
            fleet.wait_ready(replicas=2, timeout=30)
            with fleet.client(timeout=30.0, retries=4) as client:
                futures = [client.submit(x) for x in xs]
                for future in futures:
                    try:
                        future.result(timeout=30)
                    except Exception:
                        pass
                wait_until(
                    lambda: fleet.stats().hangs_detected >= 1,
                    timeout=10.0,
                    message="hung replica was not detected by the heartbeat watchdog",
                )
                wait_until(
                    lambda: fleet.stats().ready == config.replicas,
                    timeout=10.0,
                    message="hung replica was not restarted within budget",
                )
                assert fleet.stats().restarts >= 1
                out = client.predict(xs[0], timeout=30)
                assert np.allclose(out, oracle(xs[0][None])[0])
            assert_zero_lost(fleet)

    def test_corrupt_reply_detected_and_redispatched(self):
        config = fleet_config(chaos="corrupt:prob=1,warmup=0,max=2", max_attempts=6)
        xs = samples(24)
        with Fleet(config) as fleet:
            with fleet.client(timeout=30.0) as client:
                futures = [client.submit(x) for x in xs]
                outs = np.stack([f.result(timeout=30) for f in futures])
            # every answer is correct: corrupted replies were caught by the
            # CRC check and redispatched, never surfaced to the client
            assert np.allclose(outs, oracle(xs))
            stats = fleet.stats()
            assert stats.corrupt_detected >= 1
            assert stats.requeued >= 1
            assert_zero_lost(fleet)

    def test_overload_sheds_with_typed_error(self):
        config = fleet_config(
            replicas=1,
            builder_kwargs={"resolution": RES, "classes": CLASSES, "delay_ms": 30},
            max_pending=4,
            max_batch=2,
        )
        xs = samples(24)
        with Fleet(config) as fleet:
            with fleet.client(timeout=30.0, retries=0) as client:
                futures = [client.submit(x) for x in xs]
                ok = shed = 0
                for future in futures:
                    try:
                        future.result(timeout=30)
                        ok += 1
                    except Overloaded:
                        shed += 1
            stats = fleet.stats()
            assert ok >= 1, "admitted requests must still complete"
            assert shed >= 1, "past max_pending the fleet must shed explicitly"
            assert stats.shed == shed
            assert ok + shed == len(xs)
            assert_zero_lost(fleet)

    def test_overloaded_retries_eventually_succeed(self):
        config = fleet_config(
            replicas=1,
            builder_kwargs={"resolution": RES, "classes": CLASSES, "delay_ms": 5},
            max_pending=4,
            max_batch=4,
        )
        xs = samples(24)
        with Fleet(config) as fleet:
            with fleet.client(timeout=60.0, retries=10, backoff_base=0.02) as client:
                futures = [client.submit(x) for x in xs]
                outs = np.stack([f.result(timeout=60) for f in futures])
            assert np.allclose(outs, oracle(xs))
            assert_zero_lost(fleet)

    def test_deadline_exceeded_is_typed(self):
        config = fleet_config(
            replicas=1,
            builder_kwargs={"resolution": RES, "classes": CLASSES, "delay_ms": 200},
            default_deadline_ms=40.0,
        )
        with Fleet(config) as fleet:
            with fleet.client(timeout=10.0, retries=0) as client:
                with pytest.raises(DeadlineExceeded):
                    client.predict(samples(1)[0], timeout=10)
            stats = fleet.stats()
            assert stats.deadline_expired >= 1
            assert_zero_lost(fleet)

    def test_drain_on_shutdown_answers_everything(self):
        config = fleet_config(
            builder_kwargs={"resolution": RES, "classes": CLASSES, "delay_ms": 5},
        )
        xs = samples(32)
        fleet = Fleet(config).start()
        client = fleet.client(timeout=30.0, retries=0)
        futures = [client.submit(x) for x in xs]
        fleet.close(drain=True)  # while requests are still in flight
        answered = 0
        for future in futures:
            try:
                future.result(timeout=10)
            except Exception:
                pass  # typed shutdown/connection errors still count as answers
            answered += 1
        client.close()
        assert answered == len(xs)
        stats = fleet.stats()
        assert stats.lost == 0, stats.to_dict()
        assert stats.inflight == 0
        assert all(r["state"] in ("stopped", "failed") for r in stats.per_replica)

    def test_bad_payload_size_rejected(self):
        with Fleet(fleet_config()) as fleet:
            with socket.create_connection(fleet.address, timeout=10) as sock:
                sock.sendall(pack_frame(KIND_REQUEST, 1, {}, b"\x00" * 12))
                kind, request_id, meta, _ = read_frame(sock)
            assert kind == KIND_ERROR
            assert request_id == 1
            assert meta["code"] == "bad_request"
            assert_zero_lost(fleet)

    def test_client_submit_after_close_raises(self):
        with Fleet(fleet_config(replicas=1)) as fleet:
            client = fleet.client()
            client.close()
            with pytest.raises(RuntimeError):
                client.submit(samples(1)[0])

    def test_loadgen_drives_fleet(self):
        with Fleet(fleet_config()) as fleet:
            with fleet.client(timeout=30.0) as client:
                from repro.serve import run_load

                report = run_load(client, n_requests=32, concurrency=4, warmup=2, timeout=30.0)
            assert report.requests == 32
            assert report.errors == 0
            assert report.timeouts == 0
            assert_zero_lost(fleet)

    def test_stats_over_the_wire(self):
        with Fleet(fleet_config()) as fleet:
            with fleet.client() as client:
                client.predict(samples(1)[0], timeout=30)
                stats = client.server_stats()
            assert stats["submitted"] >= 1
            assert stats["lost"] == 0
            assert len(stats["per_replica"]) == fleet.config.replicas


class TestFleetConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            FleetConfig(replicas=0)
        with pytest.raises(ValueError):
            FleetConfig(max_pending=0)
        with pytest.raises(ValueError):
            FleetConfig(start_method="threads")

    def test_cli_rejects_unknown_engine(self, capsys):
        from repro.serve.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--engine", "tpu"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown engine" in err
        assert "int8" in err and "float" in err and "eager" in err
