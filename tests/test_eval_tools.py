"""Unit tests for deployment analysis, profiling and robustness evaluation."""

import numpy as np
import pytest

from repro import nn
from repro.data import ClassificationDataset
from repro.eval import (
    DEVICE_PROFILES,
    STM32F411,
    STM32F746,
    DeviceProfile,
    activation_footprints,
    count_complexity,
    deployment_report,
    estimate_latency_ms,
    evaluate_robustness,
    fits_device,
    format_profile_table,
    latency_percentiles,
    measure_latency,
    peak_activation_memory,
    profile_layers,
    weight_memory,
)
from repro.models import mobilenet_v2


@pytest.fixture(scope="module")
def tiny_model():
    return mobilenet_v2("tiny", num_classes=4)


class TestDeployment:
    def test_weight_memory_counts_bytes(self, tiny_model):
        params = sum(p.size for p in tiny_model.parameters())
        assert weight_memory(tiny_model, bytes_per_parameter=1) == params
        assert weight_memory(tiny_model, bytes_per_parameter=4) == 4 * params

    def test_activation_footprints_cover_leaf_layers(self, tiny_model):
        footprints = activation_footprints(tiny_model, (3, 16, 16))
        assert footprints
        assert all(value > 0 for value in footprints.values())

    def test_peak_memory_is_max_of_footprints(self, tiny_model):
        footprints = activation_footprints(tiny_model, (3, 16, 16))
        assert peak_activation_memory(tiny_model, (3, 16, 16)) == max(footprints.values())

    def test_peak_memory_grows_with_resolution(self, tiny_model):
        small = peak_activation_memory(tiny_model, (3, 16, 16))
        large = peak_activation_memory(tiny_model, (3, 32, 32))
        assert large > small

    def test_latency_scales_with_device_speed(self, tiny_model):
        slow = estimate_latency_ms(tiny_model, (3, 16, 16), STM32F411)
        fast = estimate_latency_ms(tiny_model, (3, 16, 16), STM32F746)
        assert slow > fast
        ratio = slow / fast
        expected = STM32F746.effective_macs_per_second / STM32F411.effective_macs_per_second
        assert ratio == pytest.approx(expected, rel=1e-6)

    def test_deployment_report_fits_real_targets(self, tiny_model):
        report = deployment_report(tiny_model, (3, 16, 16), STM32F746)
        assert report.fits_flash and report.fits_sram and report.fits
        assert "STM32F746" in report.summary()

    def test_tiny_device_rejects_big_activations(self, tiny_model):
        # A 1 kB SRAM device cannot hold even the input image.
        matchbox = DeviceProfile("matchbox", flash_kb=10_000, sram_kb=1, effective_macs_per_second=1e6)
        assert not fits_device(tiny_model, (3, 32, 32), matchbox)

    def test_device_registry_contains_known_profiles(self):
        assert {"STM32F411", "STM32F746", "STM32H743"} <= set(DEVICE_PROFILES)

    def test_invalid_device_profile_rejected(self):
        with pytest.raises(ValueError):
            DeviceProfile("broken", flash_kb=0, sram_kb=64, effective_macs_per_second=1e6)


class TestProfiler:
    def test_profile_shares_sum_to_one(self, tiny_model):
        profiles = profile_layers(tiny_model, (3, 16, 16))
        assert sum(p.flops_share for p in profiles) == pytest.approx(1.0, abs=1e-6)

    def test_profile_matches_complexity_totals(self, tiny_model):
        profiles = profile_layers(tiny_model, (3, 16, 16))
        report = count_complexity(tiny_model, (3, 16, 16))
        assert sum(p.flops for p in profiles) == report.flops

    def test_format_table_lists_total_and_layers(self, tiny_model):
        table = format_profile_table(tiny_model, (3, 16, 16), top_k=5)
        assert "total" in table
        assert "MFLOPs" in table
        # top_k limits the body rows: header, separator, 5 rows, separator, total.
        assert len(table.splitlines()) == 9

    def test_measure_latency_returns_positive_stats(self, tiny_model):
        stats = measure_latency(tiny_model, (3, 16, 16), repeats=2, warmup=0)
        assert stats["best_ms"] > 0
        assert stats["mean_ms"] >= stats["best_ms"]

    def test_measure_latency_validates_repeats(self, tiny_model):
        with pytest.raises(ValueError):
            measure_latency(tiny_model, (3, 16, 16), repeats=0)

    def test_measure_latency_reports_percentiles(self, tiny_model):
        stats = measure_latency(tiny_model, (3, 16, 16), repeats=7, warmup=0)
        assert stats["best_ms"] <= stats["p50_ms"] <= stats["p95_ms"] <= stats["p99_ms"]
        assert stats["p50_ms"] == pytest.approx(stats["median_ms"])

    def test_latency_percentiles_helper(self):
        stats = latency_percentiles([1.0, 2.0, 3.0, 4.0, 100.0])
        assert stats["p50_ms"] == pytest.approx(3.0)
        assert stats["p95_ms"] <= stats["p99_ms"] <= 100.0

    def test_deployment_report_latency_repeats_knob(self, tiny_model):
        report = deployment_report(
            tiny_model, (3, 16, 16), measure_host_latency=True, latency_repeats=2
        )
        assert report.host_latency_ms is not None and report.host_latency_ms > 0
        with pytest.raises(ValueError):
            deployment_report(tiny_model, (3, 16, 16), latency_repeats=0)


class TestRobustness:
    def _dataset(self, rng, n=24, classes=3):
        images = rng.normal(0.4, 0.1, size=(n, 3, 16, 16)).astype(np.float32)
        labels = np.arange(n) % classes
        for i, label in enumerate(labels):
            images[i, 0] += 0.5 * label
        return ClassificationDataset(images, labels, classes)

    def test_report_structure(self, rng, tiny_model):
        dataset = self._dataset(rng)
        report = evaluate_robustness(
            tiny_model, dataset, corruptions=["gaussian_noise", "contrast"], severities=(1, 5)
        )
        assert set(report.per_corruption) == {"gaussian_noise", "contrast"}
        assert set(report.per_corruption["contrast"]) == {1, 5}
        assert 0.0 <= report.mean_corruption_accuracy <= 100.0
        assert "clean accuracy" in report.summary()

    def test_invalid_severity_rejected(self, rng, tiny_model):
        with pytest.raises(ValueError):
            evaluate_robustness(tiny_model, self._dataset(rng), severities=(0,))

    def test_trained_linear_probe_degrades_under_heavy_noise(self, rng):
        # A model that genuinely depends on the input should lose accuracy when
        # the inputs are drowned in noise.
        class Probe(nn.Module):
            def __init__(self):
                super().__init__()
                self.pool = nn.GlobalAvgPool2d()
                self.flatten = nn.Flatten()
                self.linear = nn.Linear(3, 3)

            def forward(self, x):
                return self.linear(self.flatten(self.pool(x)))

        dataset = self._dataset(rng, n=48)
        model = Probe()
        # Train the probe quickly on the separable toy data.
        from repro.optim import SGD
        from repro.nn import functional as F

        optimizer = SGD(model.parameters(), lr=0.5, momentum=0.9)
        for _ in range(60):
            optimizer.zero_grad()
            logits = model(nn.Tensor(dataset.images))
            loss = F.cross_entropy(logits, dataset.labels)
            loss.backward()
            optimizer.step()
        report = evaluate_robustness(model, dataset, corruptions=["gaussian_noise"], severities=(5,))
        assert report.clean_accuracy > 80.0
        assert report.per_corruption["gaussian_noise"][5] <= report.clean_accuracy
