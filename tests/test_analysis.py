"""Unit tests for the expansion/contraction analysis utilities."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    ExpansionConfig,
    NetBooster,
    NetBoosterConfig,
    alpha_profile,
    expansion_summary,
    extract_features,
    feature_inheritance_score,
    functional_equivalence,
    linear_cka,
)
from repro.core.plt import PLTSchedule
from repro.models import mobilenet_v2
from repro.utils import ExperimentConfig


@pytest.fixture()
def expanded_pair():
    """(original, giant, records) triple for a tiny MobileNetV2."""
    model = mobilenet_v2("tiny", num_classes=4)
    booster = NetBooster(NetBoosterConfig(expansion=ExpansionConfig(fraction=0.5)))
    giant, records = booster.build_giant(model)
    return model, giant, records, booster


class TestFunctionalEquivalence:
    def test_identical_models_match(self):
        model = mobilenet_v2("tiny", num_classes=4)
        report = functional_equivalence(model, model, (3, 16, 16))
        assert report.max_abs_error == 0.0
        assert report.matches(1e-6)

    def test_linearised_giant_matches_contraction(self, expanded_pair):
        _, giant, records, booster = expanded_pair
        PLTSchedule(giant, total_steps=1).finalize()
        contracted = booster.contract(giant, records)
        report = functional_equivalence(giant, contracted, (3, 16, 16), num_probes=2)
        assert report.matches(1e-2)
        assert report.mean_abs_error <= report.max_abs_error

    def test_different_models_do_not_match(self):
        a = mobilenet_v2("tiny", num_classes=4)
        b = mobilenet_v2("tiny", num_classes=4)
        b.classifier.weight.data += 1.0
        report = functional_equivalence(a, b, (3, 16, 16), num_probes=2)
        assert report.max_abs_error > 1e-3


class TestExpansionSummary:
    def test_giant_has_more_capacity(self, expanded_pair):
        original, giant, records, _ = expanded_pair
        summary = expansion_summary(original, giant, records, (3, 16, 16))
        assert summary.param_ratio > 1.0
        assert summary.flops_ratio > 1.0
        assert len(summary.expanded_sites) == len(records)
        assert all(site in summary.summary() for site in summary.expanded_sites)

    def test_alpha_profile_tracks_schedule(self, expanded_pair):
        _, giant, _, _ = expanded_pair
        profile = alpha_profile(giant)
        assert profile
        assert all(alpha == 0.0 for alpha in profile.values())
        schedule = PLTSchedule(giant, total_steps=4)
        schedule.step()
        schedule.step()
        profile = alpha_profile(giant)
        assert all(alpha == pytest.approx(0.5) for alpha in profile.values())

    def test_alpha_profile_empty_for_plain_model(self):
        assert alpha_profile(mobilenet_v2("tiny", num_classes=4)) == {}


class TestFeatureSimilarity:
    def test_cka_identical_features_is_one(self, rng):
        features = rng.normal(size=(20, 8))
        assert linear_cka(features, features) == pytest.approx(1.0)

    def test_cka_invariant_to_orthogonal_transform(self, rng):
        features = rng.normal(size=(30, 6))
        q, _ = np.linalg.qr(rng.normal(size=(6, 6)))
        assert linear_cka(features, features @ q) == pytest.approx(1.0, abs=1e-6)

    def test_cka_low_for_independent_features(self, rng):
        a = rng.normal(size=(200, 6))
        b = rng.normal(size=(200, 6))
        assert linear_cka(a, b) < 0.3

    def test_cka_requires_matching_sample_count(self, rng):
        with pytest.raises(ValueError):
            linear_cka(rng.normal(size=(10, 4)), rng.normal(size=(11, 4)))

    def test_extract_features_shape(self, rng):
        model = mobilenet_v2("tiny", num_classes=5)
        images = rng.normal(size=(6, 3, 16, 16)).astype(np.float32)
        features = extract_features(model, images)
        assert features.shape[0] == 6
        assert features.ndim == 2
        assert features.shape[1] == model.classifier.in_features

    def test_extract_features_explicit_layer(self, rng):
        model = mobilenet_v2("tiny", num_classes=5)
        images = rng.normal(size=(4, 3, 16, 16)).astype(np.float32)
        features = extract_features(model, images, layer_path="features.0")
        assert features.shape[0] == 4

    def test_extract_features_requires_linear_head(self, rng):
        with pytest.raises(ValueError):
            extract_features(nn.Sequential(nn.ReLU()), rng.normal(size=(2, 3, 8, 8)))

    def test_inheritance_score_high_after_contraction(self, expanded_pair, rng):
        _, giant, records, booster = expanded_pair
        PLTSchedule(giant, total_steps=1).finalize()
        contracted = booster.contract(giant, records)
        images = rng.normal(size=(12, 3, 16, 16)).astype(np.float32)
        score = feature_inheritance_score(giant, contracted, images)
        assert score > 0.95
