"""Tests for the dynamic-batching serving engine."""

import threading
import time

import numpy as np
import pytest

from repro import nn
from repro.compress import calibrate, quantize_model
from repro.models import create_model
from repro.runtime import compile_quantized
from repro.serve import Engine, EngineConfig, build_server, run_load


RES = 12
SHAPE = (3, RES, RES)


@pytest.fixture(scope="module")
def qnet():
    """One calibrated int8 engine shared by the serving tests."""
    rng = np.random.default_rng(0)
    model = create_model("mobilenetv2-tiny", num_classes=8)
    model.eval()
    quantize_model(model)
    calibrate(model, [rng.normal(0.2, 0.8, size=(8,) + SHAPE).astype(np.float32)])
    return compile_quantized(model)


def _samples(n, seed=1):
    rng = np.random.default_rng(seed)
    return [rng.normal(0.2, 0.8, size=SHAPE).astype(np.float32) for _ in range(n)]


class TestEngineBasics:
    def test_predict_matches_direct_inference(self, qnet):
        sample = _samples(1)[0]
        expected = qnet.numpy_forward(sample[None])[0]
        with Engine(qnet, SHAPE, max_batch=4, max_wait_ms=0.5) as engine:
            result = engine.predict(sample, timeout=10.0)
        np.testing.assert_array_equal(result, expected)

    def test_submit_returns_future(self, qnet):
        with Engine(qnet, SHAPE) as engine:
            future = engine.submit(_samples(1)[0])
            out = future.result(timeout=10.0)
        assert out.shape == (8,)

    def test_wrong_shape_rejected_immediately(self, qnet):
        with Engine(qnet, SHAPE) as engine:
            with pytest.raises(ValueError):
                engine.submit(np.zeros((3, RES + 1, RES), dtype=np.float32))

    def test_submit_after_close_raises(self, qnet):
        engine = Engine(qnet, SHAPE)
        engine.close()
        engine.close()  # idempotent
        with pytest.raises(RuntimeError):
            engine.submit(_samples(1)[0])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(max_batch=0)
        with pytest.raises(ValueError):
            EngineConfig(max_wait_ms=-1.0)
        with pytest.raises(ValueError):
            EngineConfig(workers=0)
        with pytest.raises(ValueError):
            Engine(lambda x: x, SHAPE, config=EngineConfig(), max_batch=4)

    def test_backend_error_propagates_to_futures(self):
        def broken(batch):
            raise RuntimeError("backend exploded")

        with Engine(broken, SHAPE, max_batch=4, max_wait_ms=0.5) as engine:
            future = engine.submit(_samples(1)[0])
            with pytest.raises(RuntimeError, match="backend exploded"):
                future.result(timeout=10.0)
            deadline = time.time() + 5.0
            while engine.stats().failed < 1 and time.time() < deadline:
                time.sleep(0.01)
            assert engine.stats().failed == 1

    def test_worker_survives_malformed_backend_output(self):
        """A backend returning garbage (here: too few rows, so result splitting
        itself raises) must fail every stranded future and leave the worker
        alive for the next batch."""
        calls = [0]

        def flaky(batch):
            calls[0] += 1
            if calls[0] == 1:
                return np.zeros((0, 8), dtype=np.float32)  # indexing row 0 raises
            return np.zeros((len(batch), 8), dtype=np.float32)

        with Engine(flaky, SHAPE, max_batch=1, max_wait_ms=0.0) as engine:
            bad = engine.submit(_samples(1)[0])
            with pytest.raises(IndexError):
                bad.result(timeout=10.0)
            # the same worker (workers=1) must still serve the next request
            good = engine.submit(_samples(1)[0]).result(timeout=10.0)
        assert good.shape == (8,)
        stats = engine.stats()
        assert stats.failed == 1
        assert stats.completed == 1

    def test_batch_error_resolves_every_future(self):
        """One broken batch must resolve all of its futures, not just one."""

        def broken(batch):
            raise RuntimeError("backend exploded")

        with Engine(broken, SHAPE, max_batch=8, max_wait_ms=20.0) as engine:
            futures = [engine.submit(s) for s in _samples(6)]
            for future in futures:
                with pytest.raises(RuntimeError, match="backend exploded"):
                    future.result(timeout=10.0)


class TestDynamicBatching:
    def test_concurrent_submitters_get_their_own_answers(self, qnet):
        """Determinism and ordering: under many concurrent submitters every
        future must resolve to exactly the prediction for its own sample (the
        int8 engine is bitwise batch-invariant, so equality is exact)."""
        samples = _samples(64)
        expected = [qnet.numpy_forward(s[None])[0] for s in samples]
        results: dict[int, np.ndarray] = {}
        lock = threading.Lock()

        with Engine(qnet, SHAPE, max_batch=8, max_wait_ms=2.0, workers=2) as engine:

            def client(indices):
                for i in indices:
                    out = engine.submit(samples[i]).result(timeout=30.0)
                    with lock:
                        results[i] = out

            threads = [
                threading.Thread(target=client, args=(range(start, 64, 8),))
                for start in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert sorted(results) == list(range(64))
        for i in range(64):
            np.testing.assert_array_equal(results[i], expected[i], err_msg=f"request {i}")

    def test_batches_are_actually_fused(self, qnet):
        """With concurrent submitters the engine must run fewer forward passes
        than requests."""
        samples = _samples(48)
        with Engine(qnet, SHAPE, max_batch=16, max_wait_ms=5.0) as engine:
            futures = [engine.submit(s) for s in samples]
            for future in futures:
                future.result(timeout=30.0)
            stats = engine.stats()
        assert stats.completed == 48
        assert stats.batches < 48
        assert stats.mean_batch_size > 1.5

    def test_serial_mode_runs_batch_one(self, qnet):
        with Engine(qnet, SHAPE, max_batch=1, max_wait_ms=0.0) as engine:
            out = engine.predict_batch(_samples(5), timeout=30.0)
            stats = engine.stats()
        assert out.shape == (5, 8)
        assert stats.batches == 5
        assert stats.batch_size_counts == {1: 5}

    def test_padded_assembly_preserves_results(self, qnet):
        """pad_to_pow2 runs odd request counts at padded batch sizes without
        affecting any result."""
        samples = _samples(5)
        expected = [qnet.numpy_forward(s[None])[0] for s in samples]
        with Engine(qnet, SHAPE, max_batch=8, max_wait_ms=50.0) as engine:
            futures = [engine.submit(s) for s in samples]
            outs = [f.result(timeout=30.0) for f in futures]
        for out, exp in zip(outs, expected):
            np.testing.assert_array_equal(out, exp)

    def test_stats_percentiles_ordered(self, qnet):
        with Engine(qnet, SHAPE, max_batch=8, max_wait_ms=1.0) as engine:
            for sample in _samples(20):
                engine.submit(sample)
            deadline = time.time() + 10.0
            while engine.stats().completed < 20 and time.time() < deadline:
                time.sleep(0.01)
            stats = engine.stats()
        assert stats.completed == 20
        assert stats.latency_ms_p50 <= stats.latency_ms_p95 <= stats.latency_ms_p99
        assert "latency" in stats.summary()


class TestLoadGenAndBuilder:
    def test_run_load_reports_throughput(self, qnet):
        with Engine(qnet, SHAPE, max_batch=8, max_wait_ms=1.0) as engine:
            report = run_load(engine, n_requests=64, concurrency=8, warmup=4)
        assert report.requests == 64
        assert report.errors == 0
        assert report.requests_per_sec > 0
        assert report.latency_ms_p50 <= report.latency_ms_p99
        assert "req/s" in report.summary()

    def test_run_load_counts_timeouts(self):
        """A stuck backend must surface as counted timeouts, not a hung run."""
        from concurrent.futures import Future

        class StuckEngine:
            input_shape = SHAPE

            def submit(self, sample):
                return Future()  # never resolves

        report = run_load(StuckEngine(), n_requests=6, concurrency=2, warmup=1, timeout=0.05)
        assert report.timeouts == 6
        assert report.requests == 0
        assert report.errors == 0
        assert "timeouts" in report.summary()

    def test_build_server_int8_roundtrip(self):
        engine = build_server(
            "mobilenetv2-tiny", resolution=RES, num_classes=8, max_batch=4, max_wait_ms=0.5
        )
        with engine:
            out = engine.predict(np.zeros(SHAPE, dtype=np.float32), timeout=30.0)
        assert out.shape == (8,)

    def test_build_server_float_backend(self):
        engine = build_server(
            "mobilenetv2-tiny", resolution=RES, num_classes=8, backend="float", max_batch=4
        )
        with engine:
            out = engine.predict(np.zeros(SHAPE, dtype=np.float32), timeout=30.0)
        assert out.shape == (8,)

    def test_build_server_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            build_server("mobilenetv2-tiny", backend="tpu")

    def test_float_and_int8_servers_agree_roughly(self, qnet):
        """The served int8 predictions track the eager fake-quant model."""
        sample = _samples(1)[0]
        model = qnet.source
        with nn.no_grad():
            oracle = model(nn.Tensor(sample[None])).numpy()[0]
        with Engine(qnet, SHAPE, max_batch=2, max_wait_ms=0.5) as engine:
            served = engine.predict(sample, timeout=30.0)
        assert np.abs(served - oracle).max() < 0.5
