"""Unit tests for the alternative PLT annealing curves."""

import pytest

from repro.core import (
    CosinePLTSchedule,
    ExpansionConfig,
    PLT_SCHEDULES,
    PLTSchedule,
    StepPLTSchedule,
    expand_network,
    make_plt_schedule,
)
from repro.core.plt import collect_decayable_activations
from repro.models import mobilenet_v2


@pytest.fixture()
def giant():
    model = mobilenet_v2("tiny", num_classes=4)
    expanded, _ = expand_network(model, ExpansionConfig(fraction=0.5))
    return expanded


def _alphas(schedule, steps):
    values = []
    for _ in range(steps):
        values.append(schedule.step())
    return values


class TestScheduleShapes:
    @pytest.mark.parametrize("name", sorted(PLT_SCHEDULES))
    def test_all_schedules_start_at_zero_and_end_at_one(self, giant, name):
        schedule = make_plt_schedule(name, giant, total_steps=10)
        assert schedule.alpha == pytest.approx(0.0)
        values = _alphas(schedule, 10)
        assert values[-1] == pytest.approx(1.0)
        assert schedule.finished

    @pytest.mark.parametrize("name", sorted(PLT_SCHEDULES))
    def test_all_schedules_are_monotone(self, giant, name):
        schedule = make_plt_schedule(name, giant, total_steps=20)
        values = _alphas(schedule, 20)
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    @pytest.mark.parametrize("name", sorted(PLT_SCHEDULES))
    def test_schedules_drive_the_activations(self, giant, name):
        schedule = make_plt_schedule(name, giant, total_steps=5)
        _alphas(schedule, 5)
        activations = collect_decayable_activations(giant)
        assert activations
        assert all(act.is_linear for act in activations)

    def test_cosine_is_slower_than_linear_at_the_start(self, giant):
        linear = PLTSchedule(giant, total_steps=10)
        cosine = CosinePLTSchedule(giant, total_steps=10)
        linear.step()
        cosine_first = cosine.step()
        linear_first = linear.alpha
        assert cosine_first < linear_first

    def test_step_schedule_is_piecewise_constant(self, giant):
        schedule = StepPLTSchedule(giant, total_steps=8, num_stages=2)
        values = _alphas(schedule, 8)
        # First half stays at 0, second half at 0.5, final step jumps to 1.
        assert values[0] == pytest.approx(0.0)
        assert values[2] == pytest.approx(0.0)
        assert values[3] == pytest.approx(0.5)
        assert values[6] == pytest.approx(0.5)
        assert values[-1] == pytest.approx(1.0)
        assert len(set(round(v, 6) for v in values)) <= 3

    def test_step_schedule_validates_stage_count(self, giant):
        with pytest.raises(ValueError):
            StepPLTSchedule(giant, total_steps=4, num_stages=0)

    def test_unknown_schedule_name_rejected(self, giant):
        with pytest.raises(KeyError):
            make_plt_schedule("quadratic", giant, total_steps=4)

    def test_initial_alpha_respected(self, giant):
        schedule = make_plt_schedule("cosine", giant, total_steps=10, initial_alpha=0.5)
        assert schedule.alpha == pytest.approx(0.5)
        values = _alphas(schedule, 10)
        assert min(values) >= 0.5
        assert values[-1] == pytest.approx(1.0)
