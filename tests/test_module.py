"""Unit tests for the Module system: registration, traversal, state dicts."""

import numpy as np
import pytest

from repro import nn


class Small(nn.Module):
    def __init__(self):
        super().__init__()
        self.conv = nn.Conv2d(3, 4, 3, padding=1)
        self.bn = nn.BatchNorm2d(4)
        self.head = nn.Sequential(nn.Flatten(), nn.Linear(4 * 8 * 8, 2))

    def forward(self, x):
        return self.head(self.bn(self.conv(x)))


class TestRegistration:
    def test_parameters_discovered_recursively(self):
        model = Small()
        names = [name for name, _ in model.named_parameters()]
        assert "conv.weight" in names
        assert "head.1.weight" in names
        assert len(model.parameters()) == 6

    def test_num_parameters(self):
        model = nn.Linear(10, 5)
        assert model.num_parameters() == 55

    def test_buffers_discovered(self):
        model = Small()
        buffer_names = [name for name, _ in model.named_buffers()]
        assert "bn.running_mean" in buffer_names

    def test_reassigning_attribute_updates_registry(self):
        model = Small()
        model.conv = nn.Conv2d(3, 8, 1)
        assert model._modules["conv"].out_channels == 8

    def test_named_modules_paths(self):
        model = Small()
        paths = dict(model.named_modules())
        assert "head.1" in paths
        assert isinstance(paths["head.1"], nn.Linear)


class TestSubmoduleAccess:
    def test_get_submodule(self):
        model = Small()
        assert isinstance(model.get_submodule("head.1"), nn.Linear)
        assert model.get_submodule("") is model

    def test_get_submodule_missing_raises(self):
        with pytest.raises(KeyError):
            Small().get_submodule("nope.conv")

    def test_set_submodule_replaces_and_reregisters(self):
        model = Small()
        model.set_submodule("head.1", nn.Linear(4 * 8 * 8, 3))
        out = model(nn.Tensor(np.zeros((1, 3, 8, 8), dtype=np.float32)))
        assert out.shape == (1, 3)

    def test_set_submodule_root_raises(self):
        with pytest.raises(ValueError):
            Small().set_submodule("", nn.Identity())


class TestTrainEvalAndGrad:
    def test_train_eval_propagates(self):
        model = Small()
        model.eval()
        assert not model.bn.training
        model.train()
        assert model.bn.training

    def test_zero_grad_clears_all(self):
        model = Small()
        out = model(nn.Tensor(np.random.rand(2, 3, 8, 8).astype(np.float32)))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_requires_grad_toggle(self):
        model = Small()
        model.requires_grad_(False)
        assert all(not p.requires_grad for p in model.parameters())


class TestStateDict:
    def test_roundtrip(self):
        model_a = Small()
        model_b = Small()
        model_b.load_state_dict(model_a.state_dict())
        for (name_a, param_a), (_, param_b) in zip(model_a.named_parameters(), model_b.named_parameters()):
            np.testing.assert_allclose(param_a.numpy(), param_b.numpy(), err_msg=name_a)

    def test_shape_mismatch_raises(self):
        model = Small()
        state = model.state_dict()
        state["conv.weight"] = np.zeros((1, 1, 1, 1), dtype=np.float32)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_strict_missing_keys_raise(self):
        model = Small()
        state = model.state_dict()
        state.pop("conv.weight")
        with pytest.raises(KeyError):
            model.load_state_dict(state)
        model.load_state_dict(state, strict=False)  # non-strict is fine


class TestContainers:
    def test_sequential_indexing_and_append(self):
        seq = nn.Sequential(nn.ReLU(), nn.ReLU6())
        assert len(seq) == 2
        assert isinstance(seq[1], nn.ReLU6)
        seq.append(nn.Identity())
        assert len(seq) == 3

    def test_module_list(self):
        modules = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(modules) == 2
        assert len(list(modules)) == 2
        assert len([p for m in modules for p in m.parameters()]) == 4
        with pytest.raises(RuntimeError):
            modules(nn.Tensor(np.zeros((1, 2))))

    def test_identity_passthrough(self):
        x = nn.Tensor(np.ones((2, 2)))
        assert nn.Identity()(x) is x

    def test_repr_contains_children(self):
        assert "conv" in repr(Small())
