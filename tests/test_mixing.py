"""Unit tests for MixUp / CutMix batch augmentation."""

import numpy as np
import pytest

from repro import nn
from repro.data import ClassificationDataset, MixingLoss, cutmix, mixup
from repro.train import Trainer
from repro.utils import ExperimentConfig


@pytest.fixture
def batch(rng):
    images = rng.uniform(0, 1, size=(8, 3, 12, 12)).astype(np.float32)
    labels = np.arange(8) % 4
    return images, labels


class TestMixup:
    def test_targets_are_distributions(self, batch, rng):
        images, labels = batch
        mixed, targets = mixup(images, labels, num_classes=4, alpha=0.4, rng=rng)
        assert mixed.shape == images.shape
        assert targets.shape == (8, 4)
        np.testing.assert_allclose(targets.sum(axis=1), 1.0, atol=1e-5)

    def test_mixed_images_stay_in_convex_hull(self, batch, rng):
        images, labels = batch
        mixed, _ = mixup(images, labels, num_classes=4, alpha=1.0, rng=rng)
        assert mixed.min() >= images.min() - 1e-6
        assert mixed.max() <= images.max() + 1e-6

    def test_alpha_zero_returns_original(self, batch, rng):
        images, labels = batch
        mixed, targets = mixup(images, labels, num_classes=4, alpha=0.0, rng=rng)
        np.testing.assert_allclose(mixed, images, atol=1e-6)
        assert set(np.unique(targets)) <= {0.0, 1.0}

    def test_does_not_modify_input(self, batch, rng):
        images, labels = batch
        before = images.copy()
        mixup(images, labels, num_classes=4, alpha=1.0, rng=rng)
        np.testing.assert_array_equal(images, before)


class TestCutmix:
    def test_targets_match_pasted_area(self, batch, rng):
        images, labels = batch
        mixed, targets = cutmix(images, labels, num_classes=4, alpha=1.0, rng=rng)
        assert mixed.shape == images.shape
        np.testing.assert_allclose(targets.sum(axis=1), 1.0, atol=1e-5)
        # The weight of the original label equals the un-pasted pixel fraction.
        changed = ~np.isclose(mixed, images)
        pasted_fraction = changed.any(axis=1).mean(axis=(1, 2))
        original_weight = targets[np.arange(8), labels]
        # Identical partner pixels may not register as "changed"; weights can
        # therefore only over-estimate the surviving area.
        assert np.all(original_weight >= 1.0 - pasted_fraction - 0.35)

    def test_pastes_a_rectangle(self, rng):
        images = np.zeros((2, 1, 16, 16), dtype=np.float32)
        images[1] = 1.0
        mixed, _ = cutmix(images, np.array([0, 1]), num_classes=2, alpha=1.0, rng=rng)
        changed = mixed[0, 0] != 0.0
        if changed.any():
            rows = np.where(changed.any(axis=1))[0]
            cols = np.where(changed.any(axis=0))[0]
            block = changed[rows[0] : rows[-1] + 1, cols[0] : cols[-1] + 1]
            assert block.all()

    def test_does_not_modify_input(self, batch, rng):
        images, labels = batch
        before = images.copy()
        cutmix(images, labels, num_classes=4, alpha=1.0, rng=rng)
        np.testing.assert_array_equal(images, before)


class TestMixingLoss:
    def _model(self):
        return nn.Sequential(
            nn.Conv2d(3, 4, 3, stride=2, padding=1),
            nn.ReLU(),
            nn.GlobalAvgPool2d(),
            nn.Flatten(),
            nn.Linear(4, 4),
        )

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            MixingLoss(num_classes=4, method="cutout")
        with pytest.raises(ValueError):
            MixingLoss(num_classes=4, probability=1.5)

    @pytest.mark.parametrize("method", ["mixup", "cutmix"])
    def test_returns_scalar_loss_and_logits(self, batch, method):
        images, labels = batch
        loss_computer = MixingLoss(num_classes=4, method=method, alpha=1.0)
        loss, logits = loss_computer(self._model(), nn.Tensor(images), labels)
        assert loss.size == 1
        assert logits.shape == (8, 4)

    def test_probability_zero_falls_back_to_cross_entropy(self, batch):
        images, labels = batch
        loss_computer = MixingLoss(num_classes=4, probability=0.0)
        loss, _ = loss_computer(self._model(), nn.Tensor(images), labels)
        assert np.isfinite(loss.item())

    def test_trainer_integration(self, batch):
        images, labels = batch
        dataset = ClassificationDataset(images, labels, 4)
        trainer = Trainer(
            self._model(),
            ExperimentConfig(epochs=1, batch_size=4, lr=0.05),
            loss_computer=MixingLoss(num_classes=4, method="mixup", alpha=0.4),
        )
        history = trainer.fit(dataset, dataset)
        assert len(history.train_loss) == 1
        assert np.isfinite(history.train_loss[0])
