"""Unit tests for complexity counting, checkpoints, config and seeding utilities."""

import os

import numpy as np
import pytest

from repro import nn
from repro.eval import count_complexity, count_parameters, same_structure
from repro.models import mobilenet_v2
from repro.utils import ExperimentConfig, get_logger, load_checkpoint, save_checkpoint, seed_everything


class TestComplexity:
    def test_manual_conv_flops(self):
        model = nn.Sequential(nn.Conv2d(3, 8, 3, padding=1, bias=False))
        report = count_complexity(model, (3, 16, 16))
        assert report.flops == 3 * 8 * 9 * 16 * 16
        assert report.params == 3 * 8 * 9

    def test_linear_flops_and_bias(self):
        model = nn.Sequential(nn.Flatten(), nn.Linear(12, 5))
        report = count_complexity(model, (3, 2, 2))
        assert report.flops == 12 * 5 + 5
        assert report.params == 12 * 5 + 5

    def test_stride_halves_conv_flops(self):
        dense = count_complexity(nn.Sequential(nn.Conv2d(3, 4, 3, padding=1, bias=False)), (3, 16, 16))
        strided = count_complexity(nn.Sequential(nn.Conv2d(3, 4, 3, stride=2, padding=1, bias=False)), (3, 16, 16))
        assert strided.flops == dense.flops // 4

    def test_per_layer_breakdown(self):
        model = mobilenet_v2("tiny", num_classes=4)
        report = count_complexity(model, (3, 24, 24))
        assert len(report.per_layer) > 5
        assert sum(flops for flops, _ in report.per_layer.values()) == report.flops
        assert report.mflops == pytest.approx(report.flops / 1e6)

    def test_count_parameters_trainable_filter(self):
        model = nn.Linear(10, 2)
        model.bias.requires_grad = False
        assert count_parameters(model) == 22
        assert count_parameters(model, trainable_only=True) == 20

    def test_forward_untouched_after_counting(self):
        model = mobilenet_v2("tiny", num_classes=4)
        count_complexity(model, (3, 24, 24))
        out = model(nn.Tensor(np.zeros((1, 3, 24, 24), dtype=np.float32)))
        assert out.shape == (1, 4)

    def test_same_structure_true_for_identical_architectures(self):
        a = mobilenet_v2("tiny", num_classes=4)
        b = mobilenet_v2("tiny", num_classes=4)
        assert same_structure(a, b, (3, 24, 24))

    def test_same_structure_false_for_different_widths(self):
        a = mobilenet_v2("tiny", num_classes=4)
        b = mobilenet_v2("50", num_classes=4)
        assert not same_structure(a, b, (3, 24, 24))


class TestCheckpoints:
    def test_roundtrip_with_metadata(self, tmp_path):
        model = mobilenet_v2("tiny", num_classes=4)
        reloaded = mobilenet_v2("tiny", num_classes=4)
        path = os.path.join(tmp_path, "ckpt.npz")
        save_checkpoint(model, path, metadata={"epoch": 3, "accuracy": 55.5})
        metadata = load_checkpoint(reloaded, path)
        assert float(metadata["epoch"]) == 3
        for (_, a), (_, b) in zip(model.named_parameters(), reloaded.named_parameters()):
            np.testing.assert_allclose(a.numpy(), b.numpy())

    def test_load_appends_npz_extension(self, tmp_path):
        model = mobilenet_v2("tiny", num_classes=4)
        path = os.path.join(tmp_path, "weights")
        save_checkpoint(model, path + ".npz")
        load_checkpoint(model, path)


class TestConfigAndSeeding:
    def test_config_replace_creates_copy(self):
        config = ExperimentConfig(epochs=5, lr=0.1)
        changed = config.replace(epochs=10)
        assert changed.epochs == 10 and config.epochs == 5
        assert changed.lr == 0.1

    def test_config_to_dict(self):
        data = ExperimentConfig().to_dict()
        assert "batch_size" in data and "plt_decay_fraction" in data

    def test_seed_everything_reproducible_initialisation(self):
        seed_everything(123)
        a = mobilenet_v2("tiny", num_classes=4)
        seed_everything(123)
        b = mobilenet_v2("tiny", num_classes=4)
        np.testing.assert_allclose(a.classifier.weight.numpy(), b.classifier.weight.numpy())

    def test_seed_everything_returns_generator(self):
        rng = seed_everything(7)
        assert isinstance(rng, np.random.Generator)

    def test_logger_single_handler(self):
        logger_a = get_logger("repro-test")
        logger_b = get_logger("repro-test")
        assert logger_a is logger_b
        assert len(logger_a.handlers) == 1
