"""Downstream transfer: inherit a deep giant's features on a small target task.

Reproduces the paper's Constraint-2 workflow (Table II) on the synthetic
substrate:

1. pretrain both a vanilla tiny network and a NetBooster deep giant on the
   large corpus;
2. finetune the vanilla model on a downstream dataset the usual way;
3. transfer the deep giant with Progressive Linearization Tuning and contract
   it back to the tiny architecture;
4. compare downstream accuracy at identical inference cost.

Run with::

    python examples/downstream_transfer.py --dataset cars
"""

from __future__ import annotations

import argparse

from repro.core import ExpansionConfig, NetBooster, NetBoosterConfig
from repro.data import DOWNSTREAM_SPECS, SyntheticImageNet, downstream_dataset
from repro.models import mobilenet_v2
from repro.train import evaluate, finetune
from repro.utils import ExperimentConfig, get_logger, seed_everything

LOGGER = get_logger("downstream-transfer")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", choices=sorted(DOWNSTREAM_SPECS), default="cars")
    parser.add_argument("--pretrain-epochs", type=int, default=8)
    parser.add_argument("--finetune-epochs", type=int, default=6)
    parser.add_argument("--classes", type=int, default=10, help="classes in the pretraining corpus")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    resolution = 20
    seed_everything(args.seed)
    corpus = SyntheticImageNet(
        num_classes=args.classes, samples_per_class=60, val_samples_per_class=15, resolution=resolution
    )
    target_train, target_val = downstream_dataset(args.dataset, resolution=resolution)
    LOGGER.info(
        "corpus: %d train images | %s: %d train / %d val images",
        len(corpus.train), args.dataset, len(target_train), len(target_val),
    )

    pretrain_config = ExperimentConfig(epochs=args.pretrain_epochs, batch_size=32, lr=0.1)
    finetune_config = ExperimentConfig(epochs=args.finetune_epochs, batch_size=32, lr=0.03)

    # Vanilla: pretrain then finetune.
    LOGGER.info("vanilla pretraining ...")
    seed_everything(args.seed)
    vanilla = mobilenet_v2("tiny", num_classes=args.classes)
    finetune(vanilla, corpus.train, corpus.val, pretrain_config)  # pretraining phase
    LOGGER.info("vanilla downstream finetuning on %s ...", args.dataset)
    vanilla_history = finetune(
        vanilla, target_train, target_val, finetune_config, new_num_classes=target_train.num_classes
    )

    # NetBooster: pretrain the giant, PLT-finetune on the target, contract.
    LOGGER.info("NetBooster giant pretraining ...")
    seed_everything(args.seed)
    booster = NetBooster(
        NetBoosterConfig(
            expansion=ExpansionConfig(fraction=0.5),
            pretrain=pretrain_config,
            finetune=finetune_config,
            plt_decay_fraction=0.2,
        )
    )
    giant, records = booster.build_giant(mobilenet_v2("tiny", num_classes=args.classes))
    booster.pretrain_giant(giant, corpus.train, corpus.val)
    LOGGER.info("PLT finetuning the giant on %s ...", args.dataset)
    booster.plt_finetune(giant, target_train, target_val, new_num_classes=target_train.num_classes)
    contracted = booster.contract(giant, records)
    booster_accuracy = evaluate(contracted, target_val)

    print("\n================ downstream transfer (%s) ================" % args.dataset)
    print(f"vanilla pretrain -> finetune : {vanilla_history.final_val_accuracy:6.2f}%")
    print(f"NetBooster transfer          : {booster_accuracy:6.2f}%")
    print("Both models share the identical tiny inference architecture.")


if __name__ == "__main__":
    main()
