"""MCU deployment audit of the model zoo, before and after NetBooster.

Produces the feasibility tables an embedded engineer needs:

* per-layer FLOPs/parameter profile of each tiny network;
* flash / peak-SRAM / latency estimates on three STM32-class device profiles;
* measured host latency of each model through the fused inference runtime
  (:func:`repro.compile`), next to the analytic roofline estimate and the
  arena planner's liveness-packed peak working set;
* proof that a NetBooster-contracted network has byte-for-byte the same
  deployment footprint as its vanilla counterpart (the paper's "no inference
  overhead" claim), while the training-time deep giant would *not* fit.

This example is analytic plus a few timed forward passes — no training — so
it runs in seconds.

Run with::

    python examples/mcu_deployment_report.py [--resolution 24]
"""

from __future__ import annotations

import argparse

from repro.core import ExpansionConfig, expand_network, contract_network
from repro.core.plt import PLTSchedule
from repro.eval import (
    DEVICE_PROFILES,
    deployment_report,
    format_profile_table,
)
from repro.models import available_models, create_model
from repro.utils import get_logger, seed_everything

LOGGER = get_logger("mcu-deployment")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--resolution", type=int, default=24, help="input resolution")
    parser.add_argument("--classes", type=int, default=10)
    parser.add_argument("--top-layers", type=int, default=8, help="rows in the per-layer profile")
    args = parser.parse_args()

    seed_everything(0)
    shape = (3, args.resolution, args.resolution)

    # ------------------------------------------------------------ model zoo audit
    print("=================== per-model deployment audit ===================")
    for name in available_models():
        model = create_model(name, num_classes=args.classes)
        print(f"\n--- {name} ---")
        print(format_profile_table(model, shape, top_k=args.top_layers))
        for index, device in enumerate(DEVICE_PROFILES.values()):
            report = deployment_report(model, shape, device, measure_host_latency=index == 0)
            status = "fits" if report.fits else "DOES NOT FIT"
            host = f" | host {report.host_latency_ms:6.2f} ms" if report.host_latency_ms else ""
            print(
                f"  {device.name:<10s} flash {report.flash_bytes / 1024:7.1f} kB | "
                f"SRAM {report.peak_sram_bytes / 1024:7.1f} kB | "
                f"~{report.latency_ms:6.1f} ms  [{status}]{host}"
            )

    # ------------------------------------------- NetBooster footprint comparison
    print("\n========== NetBooster: giant vs contracted footprint ==========")
    original = create_model("mobilenetv2-tiny", num_classes=args.classes)
    giant, records = expand_network(original, ExpansionConfig(fraction=0.5))
    PLTSchedule(giant, total_steps=1).finalize()
    contracted = contract_network(giant, records)

    device = DEVICE_PROFILES["STM32F746"]
    for label, model in (("original TNN", original), ("deep giant (training)", giant), ("contracted TNN", contracted)):
        report = deployment_report(model, shape, device)
        print(f"\n[{label}]")
        print(report.summary())

    original_report = deployment_report(original, shape, device)
    contracted_report = deployment_report(contracted, shape, device)
    same_flash = abs(contracted_report.flash_bytes - original_report.flash_bytes) <= 0.02 * original_report.flash_bytes
    same_sram = contracted_report.peak_sram_bytes == original_report.peak_sram_bytes
    print(
        "\ncontracted model matches the original deployment footprint:",
        same_flash and same_sram,
    )


if __name__ == "__main__":
    main()
