"""Quickstart: boost a tiny network with NetBooster in five steps.

This example walks through the full expansion-then-contraction pipeline on a
small synthetic corpus:

1. build a tiny MobileNetV2 and a vanilla-trained reference;
2. expand it into a deep giant (Network Expansion);
3. train the giant on the corpus;
4. run Progressive Linearization Tuning (PLT) to remove the expanded
   non-linearities;
5. contract the giant back to the original architecture and compare accuracy
   and inference cost against the vanilla baseline.

The training runs go through the experiment orchestrator's shared steps
(``vanilla/…``, ``giant/…``, ``netbooster/…``) and its on-disk result cache,
so a second invocation — or a later ``python -m repro.experiments run-all``
with the same scale — reuses the trained models instead of retraining them.

Run with::

    python examples/quickstart.py [--epochs 8] [--classes 8] [--no-cache]
"""

from __future__ import annotations

import argparse

from repro.eval import count_complexity
from repro.experiments import ExperimentScale, ResultCache, StepContext
from repro.experiments.registry import rebuild_giant, rebuild_model
from repro.utils import get_logger

LOGGER = get_logger("quickstart")

NETWORK = "mobilenetv2-tiny"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=8, help="pretraining epochs for both methods")
    parser.add_argument("--finetune-epochs", type=int, default=4, help="PLT finetuning epochs")
    parser.add_argument("--classes", type=int, default=8, help="number of classes in the synthetic corpus")
    parser.add_argument("--samples-per-class", type=int, default=60)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--cache-dir", default=None,
        help="result cache root (default: $REPRO_CACHE_DIR or .repro_cache)",
    )
    parser.add_argument("--no-cache", action="store_true", help="retrain from scratch, skip the cache")
    args = parser.parse_args()

    scale = ExperimentScale(
        num_classes=args.classes,
        samples_per_class=args.samples_per_class,
        val_samples_per_class=15,
        resolution=20,
        pretrain_epochs=args.epochs,
        finetune_epochs=args.finetune_epochs,
        batch_size=32,
        lr=0.1,
        finetune_lr=0.03,
        seed=args.seed,
    )
    ctx = StepContext(scale, cache=None if args.no_cache else ResultCache(args.cache_dir))
    if ctx.cache is not None:
        LOGGER.info("result cache: %s (cached runs are instant; --no-cache to retrain)", ctx.cache.root)

    # ---------------------------------------------------------------- vanilla
    LOGGER.info("resolving the vanilla tiny network (shared step vanilla/%s) ...", NETWORK)
    vanilla_artifact = ctx.dep(f"vanilla/{NETWORK}")
    vanilla = rebuild_model(NETWORK, scale, vanilla_artifact)
    vanilla_accuracy = vanilla_artifact.meta["history"]["val_accuracy"][-1]

    # -------------------------------------------------------------- NetBooster
    LOGGER.info("resolving NetBooster (expand -> pretrain -> PLT -> contract) ...")
    giant_artifact = ctx.dep(f"giant/{NETWORK}")
    booster_artifact = ctx.dep(f"netbooster/{NETWORK}")
    giant, records, _booster = rebuild_giant(NETWORK, scale, giant_artifact)
    contracted = rebuild_model(NETWORK, scale, booster_artifact)

    # ------------------------------------------------------------------ report
    shape = (3, scale.resolution, scale.resolution)
    vanilla_cost = count_complexity(vanilla, shape)
    giant_cost = count_complexity(giant, shape)
    final_cost = count_complexity(contracted, shape)

    print("\n================= NetBooster quickstart =================")
    print(f"vanilla tiny accuracy      : {vanilla_accuracy:6.2f}%")
    print(f"deep giant accuracy        : {booster_artifact.meta['giant_accuracy']:6.2f}%")
    print(f"NetBooster (contracted)    : {booster_artifact.meta['final_accuracy']:6.2f}%")
    print(f"expanded layers            : {len(records)}")
    print(f"vanilla cost               : {vanilla_cost.flops:,} FLOPs / {vanilla_cost.params:,} params")
    print(f"giant cost (training only) : {giant_cost.flops:,} FLOPs / {giant_cost.params:,} params")
    print(f"contracted cost            : {final_cost.flops:,} FLOPs / {final_cost.params:,} params")
    print("contracted model has the original inference cost:",
          final_cost.flops == vanilla_cost.flops and final_cost.params == vanilla_cost.params)


if __name__ == "__main__":
    main()
