"""Quickstart: boost a tiny network with NetBooster in five steps.

This example walks through the full expansion-then-contraction pipeline on a
small synthetic corpus:

1. build a tiny MobileNetV2 and a vanilla-trained reference;
2. expand it into a deep giant (Network Expansion);
3. train the giant on the corpus;
4. run Progressive Linearization Tuning (PLT) to remove the expanded
   non-linearities;
5. contract the giant back to the original architecture and compare accuracy
   and inference cost against the vanilla baseline.

Run with::

    python examples/quickstart.py [--epochs 8] [--classes 8]
"""

from __future__ import annotations

import argparse

from repro.baselines import train_vanilla
from repro.core import ExpansionConfig, NetBooster, NetBoosterConfig
from repro.data import SyntheticImageNet
from repro.eval import count_complexity
from repro.models import mobilenet_v2
from repro.utils import ExperimentConfig, get_logger, seed_everything

LOGGER = get_logger("quickstart")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=8, help="pretraining epochs for both methods")
    parser.add_argument("--finetune-epochs", type=int, default=4, help="PLT finetuning epochs")
    parser.add_argument("--classes", type=int, default=8, help="number of classes in the synthetic corpus")
    parser.add_argument("--samples-per-class", type=int, default=60)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    seed_everything(args.seed)
    LOGGER.info("building the synthetic large-scale corpus ...")
    corpus = SyntheticImageNet(
        num_classes=args.classes,
        samples_per_class=args.samples_per_class,
        val_samples_per_class=15,
        resolution=20,
    )

    # ---------------------------------------------------------------- vanilla
    LOGGER.info("training the vanilla tiny network ...")
    seed_everything(args.seed)
    vanilla = mobilenet_v2("tiny", num_classes=args.classes)
    vanilla_history = train_vanilla(
        vanilla,
        corpus.train,
        corpus.val,
        ExperimentConfig(epochs=args.epochs + args.finetune_epochs, batch_size=32, lr=0.1),
    )

    # -------------------------------------------------------------- NetBooster
    LOGGER.info("running NetBooster (expand -> pretrain -> PLT -> contract) ...")
    seed_everything(args.seed)
    booster = NetBooster(
        NetBoosterConfig(
            expansion=ExpansionConfig(fraction=0.5, expansion_ratio=6),
            pretrain=ExperimentConfig(epochs=args.epochs, batch_size=32, lr=0.1),
            finetune=ExperimentConfig(epochs=args.finetune_epochs, batch_size=32, lr=0.03),
            plt_decay_fraction=0.3,
        )
    )
    result = booster.run(mobilenet_v2("tiny", num_classes=args.classes), corpus.train, corpus.val)

    # ------------------------------------------------------------------ report
    shape = (3, corpus.train.resolution, corpus.train.resolution)
    vanilla_cost = count_complexity(vanilla, shape)
    giant_cost = count_complexity(result.giant, shape)
    final_cost = count_complexity(result.model, shape)

    print("\n================= NetBooster quickstart =================")
    print(f"vanilla tiny accuracy      : {vanilla_history.final_val_accuracy:6.2f}%")
    print(f"deep giant accuracy        : {result.giant_accuracy:6.2f}%")
    print(f"NetBooster (contracted)    : {result.final_accuracy:6.2f}%")
    print(f"expanded layers            : {len(result.records)}")
    print(f"vanilla cost               : {vanilla_cost.flops:,} FLOPs / {vanilla_cost.params:,} params")
    print(f"giant cost (training only) : {giant_cost.flops:,} FLOPs / {giant_cost.params:,} params")
    print(f"contracted cost            : {final_cost.flops:,} FLOPs / {final_cost.params:,} params")
    print("contracted model has the original inference cost:",
          final_cost.flops == vanilla_cost.flops and final_cost.params == vanilla_cost.params)


if __name__ == "__main__":
    main()
