"""Fig. 1(a) revisited: strong augmentation vs capacity for tiny networks.

The paper's first observation is that TNNs under-fit: regularisation and heavy
augmentation, which help large networks, *hurt* tiny ones, whereas adding
capacity during training (NetBooster) helps.  This example reproduces that
comparison on the synthetic corpus and additionally measures robustness to
common corruptions, since a practitioner will want to know whether the
capacity-trained network is also the more robust one.

Three training runs of the same MobileNetV2-Tiny:

* vanilla cross-entropy;
* vanilla + MixUp (a strong augmentation);
* NetBooster (expansion-then-contraction).

Run with::

    python examples/robustness_and_augmentation.py [--epochs 6]
"""

from __future__ import annotations

import argparse

from repro.baselines import train_vanilla
from repro.core import ExpansionConfig, NetBooster, NetBoosterConfig
from repro.data import MixingLoss, SyntheticImageNet
from repro.eval import evaluate_robustness
from repro.models import mobilenet_v2
from repro.train import Trainer
from repro.utils import ExperimentConfig, get_logger, seed_everything

LOGGER = get_logger("robustness")

CORRUPTIONS = ["gaussian_noise", "gaussian_blur", "contrast"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--finetune-epochs", type=int, default=3)
    parser.add_argument("--classes", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    seed_everything(args.seed)
    corpus = SyntheticImageNet(
        num_classes=args.classes, samples_per_class=60, val_samples_per_class=15, resolution=20
    )
    total_epochs = args.epochs + args.finetune_epochs
    base_config = ExperimentConfig(epochs=total_epochs, batch_size=32, lr=0.1)

    models = {}

    LOGGER.info("training vanilla ...")
    seed_everything(args.seed)
    vanilla = mobilenet_v2("tiny", num_classes=args.classes)
    train_vanilla(vanilla, corpus.train, corpus.val, base_config)
    models["vanilla"] = vanilla

    LOGGER.info("training vanilla + MixUp ...")
    seed_everything(args.seed)
    mixup_model = mobilenet_v2("tiny", num_classes=args.classes)
    Trainer(
        mixup_model,
        base_config,
        loss_computer=MixingLoss(num_classes=args.classes, method="mixup", alpha=0.4),
    ).fit(corpus.train, corpus.val)
    models["vanilla + MixUp"] = mixup_model

    LOGGER.info("training with NetBooster ...")
    seed_everything(args.seed)
    booster = NetBooster(
        NetBoosterConfig(
            expansion=ExpansionConfig(fraction=0.5),
            pretrain=ExperimentConfig(epochs=args.epochs, batch_size=32, lr=0.1),
            finetune=ExperimentConfig(epochs=args.finetune_epochs, batch_size=32, lr=0.03),
            plt_decay_fraction=0.3,
        )
    )
    models["NetBooster"] = booster.run(
        mobilenet_v2("tiny", num_classes=args.classes), corpus.train, corpus.val
    ).model

    print("\n============== accuracy and robustness comparison ==============")
    print(f"{'method':<18s} {'clean':>8s} {'corrupted':>10s} {'gap':>7s}")
    reports = {}
    for label, model in models.items():
        report = evaluate_robustness(
            model, corpus.val, corruptions=CORRUPTIONS, severities=(1, 3, 5)
        )
        reports[label] = report
        print(
            f"{label:<18s} {report.clean_accuracy:>7.2f}% "
            f"{report.mean_corruption_accuracy:>9.2f}% {report.robustness_gap:>6.2f}%"
        )

    print("\nPer-corruption breakdown (NetBooster):")
    print(reports["NetBooster"].summary())
    print(
        "\nExpected qualitative outcome (paper Fig. 1a): strong augmentation does not "
        "help the under-fitting tiny network, while NetBooster's extra training "
        "capacity does."
    )


if __name__ == "__main__":
    main()
