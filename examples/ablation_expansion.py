"""Ablation playground: what/where/how-much to expand (paper Sec. IV-D).

Sweeps the three Network-Expansion design questions on a small corpus and
prints a compact report:

* Q1 — inserted block type (inverted residual / basic / bottleneck);
* Q2 — placement (uniform / first / middle / last);
* Q3 — expansion ratio (2 / 4 / 6 / 8).

Every configuration runs the full expand → train → PLT → contract pipeline,
and the report verifies that the contracted cost never depends on the choice.

Run with::

    python examples/ablation_expansion.py --question all
"""

from __future__ import annotations

import argparse

from repro.core import ExpansionConfig, NetBooster, NetBoosterConfig
from repro.data import SyntheticImageNet
from repro.eval import count_complexity
from repro.models import mobilenet_v2
from repro.utils import ExperimentConfig, get_logger, seed_everything

LOGGER = get_logger("ablation")


def run_config(config: ExpansionConfig, corpus, epochs: int, seed: int) -> tuple[float, float, int]:
    """Return (expanded accuracy, contracted accuracy, contracted FLOPs)."""
    seed_everything(seed)
    booster = NetBooster(
        NetBoosterConfig(
            expansion=config,
            pretrain=ExperimentConfig(epochs=epochs, batch_size=32, lr=0.1),
            finetune=ExperimentConfig(epochs=max(epochs // 2, 1), batch_size=32, lr=0.03),
            plt_decay_fraction=0.3,
        )
    )
    result = booster.run(mobilenet_v2("tiny", num_classes=corpus.num_classes), corpus.train, corpus.val)
    shape = (3, corpus.train.resolution, corpus.train.resolution)
    flops = count_complexity(result.model, shape).flops
    return max(result.pretrain_history.val_accuracy), result.final_accuracy, flops


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--question", choices=["q1", "q2", "q3", "all"], default="all")
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    seed_everything(args.seed)
    corpus = SyntheticImageNet(num_classes=8, samples_per_class=50, val_samples_per_class=12, resolution=20)

    sweeps: dict[str, list[tuple[str, ExpansionConfig]]] = {}
    if args.question in ("q1", "all"):
        sweeps["Q1 — block type"] = [
            (block, ExpansionConfig(block_type=block)) for block in ("inverted_residual", "basic", "bottleneck")
        ]
    if args.question in ("q2", "all"):
        sweeps["Q2 — placement"] = [
            (place, ExpansionConfig(placement=place)) for place in ("uniform", "first", "middle", "last")
        ]
    if args.question in ("q3", "all"):
        sweeps["Q3 — expansion ratio"] = [
            (f"ratio={ratio}", ExpansionConfig(expansion_ratio=ratio)) for ratio in (2, 4, 6, 8)
        ]

    baseline_flops = count_complexity(
        mobilenet_v2("tiny", num_classes=corpus.num_classes),
        (3, corpus.train.resolution, corpus.train.resolution),
    ).flops

    for title, configs in sweeps.items():
        print(f"\n===== {title} =====")
        print(f"{'setting':20s} {'expanded acc':>13s} {'final acc':>10s} {'contracted FLOPs':>17s}")
        for name, config in configs:
            LOGGER.info("running %s / %s ...", title, name)
            expanded, final, flops = run_config(config, corpus, args.epochs, args.seed)
            marker = "" if flops == baseline_flops else "  (!!)"
            print(f"{name:20s} {expanded:13.2f} {final:10.2f} {flops:17,d}{marker}")
        print(f"{'original TNN':20s} {'-':>13s} {'-':>10s} {baseline_flops:17,d}")


if __name__ == "__main__":
    main()
