"""Ablation: how sensitive is PLT to the alpha-annealing curve?

The paper anneals the activation slope linearly over ``Ed`` epochs.  This
example compares the linear ramp against a cosine ramp and a step ramp (both
from :mod:`repro.core.alpha_schedules`) plus the degenerate "instant" variant
(alpha jumps straight to 1, i.e. the non-linearities are removed in one go —
the closest analogue of NetAug's "directly drop the augmented parts").

For every variant the same pretrained deep giant is finetuned, linearised,
contracted, and the final TNN accuracy is reported.

Run with::

    python examples/plt_schedule_ablation.py [--epochs 6]
"""

from __future__ import annotations

import argparse
import copy

from repro.core import (
    ExpansionConfig,
    NetBooster,
    NetBoosterConfig,
    contract_network,
    make_plt_schedule,
)
from repro.data import SyntheticImageNet
from repro.models import mobilenet_v2
from repro.train import Trainer, evaluate
from repro.utils import ExperimentConfig, get_logger, seed_everything

LOGGER = get_logger("plt-ablation")


def finetune_with_schedule(
    giant, records, schedule_name: str, corpus, config: ExperimentConfig, decay_fraction: float
) -> float:
    """Finetune a copy of the giant with the named schedule and contract it."""
    giant = copy.deepcopy(giant)
    records = copy.deepcopy(records)
    iterations_per_epoch = max((len(corpus.train) + config.batch_size - 1) // config.batch_size, 1)

    if schedule_name == "instant":
        schedule = make_plt_schedule("linear", giant, total_steps=1)
        schedule.finalize()
        trainer = Trainer(giant, config)
    else:
        decay_epochs = max(int(round(config.epochs * decay_fraction)), 1)
        schedule = make_plt_schedule(
            schedule_name, giant, total_steps=iterations_per_epoch * decay_epochs
        )
        trainer = Trainer(giant, config, iteration_callbacks=[lambda _step: schedule.step()])

    trainer.fit(corpus.train, corpus.val)
    schedule.finalize()
    contracted = contract_network(giant, records)
    return evaluate(contracted, corpus.val)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=6, help="giant pretraining epochs")
    parser.add_argument("--finetune-epochs", type=int, default=4, help="PLT epochs per variant")
    parser.add_argument("--classes", type=int, default=8)
    parser.add_argument("--decay-fraction", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    seed_everything(args.seed)
    corpus = SyntheticImageNet(
        num_classes=args.classes, samples_per_class=60, val_samples_per_class=15, resolution=20
    )

    LOGGER.info("pretraining the shared deep giant ...")
    booster = NetBooster(
        NetBoosterConfig(
            expansion=ExpansionConfig(fraction=0.5),
            pretrain=ExperimentConfig(epochs=args.epochs, batch_size=32, lr=0.1),
        )
    )
    giant, records = booster.build_giant(mobilenet_v2("tiny", num_classes=args.classes))
    booster.pretrain_giant(giant, corpus.train, corpus.val)
    giant_accuracy = evaluate(giant, corpus.val)

    finetune_config = ExperimentConfig(epochs=args.finetune_epochs, batch_size=32, lr=0.03)
    results = {}
    for name in ("linear", "cosine", "step", "instant"):
        LOGGER.info("PLT variant: %s", name)
        seed_everything(args.seed + 1)
        results[name] = finetune_with_schedule(
            giant, records, name, corpus, finetune_config, args.decay_fraction
        )

    print("\n================= PLT schedule ablation =================")
    print(f"deep giant accuracy (before PLT) : {giant_accuracy:6.2f}%")
    for name, accuracy in results.items():
        print(f"contracted TNN, {name:<8s} schedule : {accuracy:6.2f}%")
    print(
        "\nExpected qualitative outcome: the gradual schedules (linear/cosine/step) "
        "preserve the giant's features, while the instant removal loses part of the "
        "accuracy — the paper's argument for PLT over NetAug-style dropping."
    )


if __name__ == "__main__":
    main()
