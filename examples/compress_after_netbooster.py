"""Compression orthogonality: prune and quantize a NetBooster-trained TNN.

The paper argues NetBooster is orthogonal to the usual TNN compression toolbox
(Sec. II-A).  This example checks that claim end to end:

1. train the same tiny MobileNetV2 with vanilla training and with NetBooster;
2. apply magnitude pruning followed by simulated int8 post-training
   quantization to both;
3. report accuracy before/after compression — the NetBooster advantage should
   survive, and both models should lose a comparably small amount.

Run with::

    python examples/compress_after_netbooster.py [--epochs 6] [--sparsity 0.5]
"""

from __future__ import annotations

import argparse

from repro.baselines import train_vanilla
from repro.compress import MagnitudePruner, QuantizationSpec, calibrate, quantize_model
from repro.core import ExpansionConfig, NetBooster, NetBoosterConfig
from repro.data import SyntheticImageNet
from repro.models import mobilenet_v2
from repro.train import evaluate
from repro.utils import ExperimentConfig, get_logger, seed_everything

LOGGER = get_logger("compress-after-netbooster")


def compress(model, corpus, sparsity: float, bits: int) -> dict[str, float]:
    """Prune then quantize ``model``; return accuracy after each stage."""
    accuracies = {"float": evaluate(model, corpus.val)}

    pruner = MagnitudePruner(model, scope="global")
    report = pruner.prune(sparsity)
    accuracies[f"pruned@{report.achieved_sparsity:.0%}"] = evaluate(model, corpus.val)

    quantize_model(model, QuantizationSpec(bits=bits), skip=("classifier",))
    calibrate(model, [corpus.train.images[:64]])
    accuracies[f"int{bits}"] = evaluate(model, corpus.val)
    return accuracies


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=6, help="pretraining epochs")
    parser.add_argument("--finetune-epochs", type=int, default=3, help="PLT epochs")
    parser.add_argument("--classes", type=int, default=8)
    parser.add_argument("--sparsity", type=float, default=0.5, help="magnitude-pruning sparsity")
    parser.add_argument("--bits", type=int, default=8, help="quantization word length")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    seed_everything(args.seed)
    corpus = SyntheticImageNet(
        num_classes=args.classes, samples_per_class=60, val_samples_per_class=15, resolution=20
    )

    LOGGER.info("training the vanilla baseline ...")
    seed_everything(args.seed)
    vanilla = mobilenet_v2("tiny", num_classes=args.classes)
    train_vanilla(
        vanilla,
        corpus.train,
        corpus.val,
        ExperimentConfig(epochs=args.epochs + args.finetune_epochs, batch_size=32, lr=0.1),
    )

    LOGGER.info("training with NetBooster ...")
    seed_everything(args.seed)
    booster = NetBooster(
        NetBoosterConfig(
            expansion=ExpansionConfig(fraction=0.5),
            pretrain=ExperimentConfig(epochs=args.epochs, batch_size=32, lr=0.1),
            finetune=ExperimentConfig(epochs=args.finetune_epochs, batch_size=32, lr=0.03),
            plt_decay_fraction=0.3,
        )
    )
    boosted = booster.run(
        mobilenet_v2("tiny", num_classes=args.classes), corpus.train, corpus.val
    ).model

    LOGGER.info("compressing both models ...")
    vanilla_accuracies = compress(vanilla, corpus, args.sparsity, args.bits)
    boosted_accuracies = compress(boosted, corpus, args.sparsity, args.bits)

    print("\n============ compression after NetBooster ============")
    print(f"{'stage':<16s} {'vanilla':>10s} {'NetBooster':>12s} {'gap':>8s}")
    for stage in vanilla_accuracies:
        vanilla_acc = vanilla_accuracies[stage]
        boosted_acc = boosted_accuracies[stage]
        print(f"{stage:<16s} {vanilla_acc:>9.2f}% {boosted_acc:>11.2f}% {boosted_acc - vanilla_acc:>+7.2f}")
    print("\nNetBooster's accuracy advantage should persist through pruning and int8.")


if __name__ == "__main__":
    main()
