"""Detection transfer: use a NetBooster-pretrained backbone for object detection.

Reproduces the paper's Table III workflow on the synthetic VOC substitute:

1. pretrain a MobileNetV2-0.35 backbone on the classification corpus, both
   vanilla and as a NetBooster deep giant;
2. attach the tiny anchor-free detection head and finetune on synthetic VOC
   (the NetBooster variant runs PLT during detection training);
3. contract the NetBooster backbone and compare AP50 at the same cost.

Run with::

    python examples/detection_transfer.py
"""

from __future__ import annotations

import argparse

from repro.core import ExpansionConfig, NetBooster, NetBoosterConfig, PLTSchedule, contract_network
from repro.data import SyntheticImageNet, SyntheticVOC
from repro.models import TinyDetector, mobilenet_v2
from repro.train import DetectionTrainer, evaluate_ap50
from repro.utils import ExperimentConfig, get_logger, seed_everything

LOGGER = get_logger("detection-transfer")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pretrain-epochs", type=int, default=6)
    parser.add_argument("--detection-epochs", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    seed_everything(args.seed)
    corpus = SyntheticImageNet(num_classes=10, samples_per_class=50, val_samples_per_class=10, resolution=20)
    voc = SyntheticVOC(num_classes=5, num_train=64, num_val=24, resolution=32, object_size=12)
    LOGGER.info("corpus %d images | VOC %d train / %d val", len(corpus.train), len(voc.train), len(voc.val))

    pretrain_config = ExperimentConfig(epochs=args.pretrain_epochs, batch_size=32, lr=0.1)
    detection_config = ExperimentConfig(epochs=args.detection_epochs, batch_size=16, lr=0.05)
    booster = NetBooster(
        NetBoosterConfig(expansion=ExpansionConfig(fraction=0.5), pretrain=pretrain_config)
    )

    # Vanilla backbone.
    LOGGER.info("training the vanilla backbone ...")
    seed_everything(args.seed)
    vanilla_backbone = mobilenet_v2("35", num_classes=corpus.num_classes)
    booster.pretrain_giant(vanilla_backbone, corpus.train)  # reuse the trainer wiring for plain training
    vanilla_detector = TinyDetector(vanilla_backbone, num_classes=voc.num_classes, image_size=voc.resolution)
    DetectionTrainer(vanilla_detector, detection_config).fit(voc.train, None)
    vanilla_ap = evaluate_ap50(vanilla_detector, voc.val)

    # NetBooster backbone: expand, pretrain, PLT during detection training, contract.
    LOGGER.info("training the NetBooster backbone ...")
    seed_everything(args.seed)
    giant, records = booster.build_giant(mobilenet_v2("35", num_classes=corpus.num_classes))
    booster.pretrain_giant(giant, corpus.train)
    detector = TinyDetector(giant, num_classes=voc.num_classes, image_size=voc.resolution)
    iterations = max(len(voc.train) // detection_config.batch_size, 1) * max(args.detection_epochs // 3, 1)
    schedule = PLTSchedule(giant, total_steps=iterations)
    DetectionTrainer(
        detector, detection_config, iteration_callbacks=[lambda _step: schedule.step()]
    ).fit(voc.train, None)
    schedule.finalize()
    detector.backbone = contract_network(giant, records)
    booster_ap = evaluate_ap50(detector, voc.val)

    print("\n================ detection transfer (synthetic VOC) ================")
    print(f"vanilla backbone    AP50 : {vanilla_ap:6.2f}")
    print(f"NetBooster backbone AP50 : {booster_ap:6.2f}")
    print("Both detectors use the same backbone architecture at inference time.")


if __name__ == "__main__":
    main()
